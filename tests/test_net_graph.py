"""Tests for repro.net.graph."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.net.graph import DiGraph, Edge


class TestEdge:
    def test_key_and_reverse(self):
        edge = Edge("a", "b", 2.0)
        assert edge.key == ("a", "b")
        assert edge.reversed() == Edge("b", "a", 2.0)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Edge("a", "a")

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            Edge("a", "b", -1.0)

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphError):
            Edge("a", "b", float("nan"))


class TestDiGraphConstruction:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("x")
        g.add_node("x")
        assert g.nodes == ["x"]

    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.5)
        assert g.has_node("a") and g.has_node("b")
        assert g.edge("a", "b").weight == 1.5

    def test_edges_are_directed(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_duplicate_edge_rejected(self):
        g = DiGraph()
        g.add_edge("a", "b")
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge("a", "b", 2.0)

    def test_bidirectional(self):
        g = DiGraph()
        fwd, back = g.add_bidirectional("a", "b", 3.0)
        assert fwd.key == ("a", "b") and back.key == ("b", "a")
        assert g.num_edges == 2

    def test_counts(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.num_nodes == 3
        assert g.num_edges == 2


class TestDiGraphAccess:
    def test_missing_edge_raises(self):
        g = DiGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(EdgeNotFoundError):
            g.edge("a", "b")

    def test_missing_node_raises(self):
        g = DiGraph()
        with pytest.raises(NodeNotFoundError):
            list(g.successors("ghost"))

    def test_successors_predecessors(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("c", "b")
        assert {e.head for e in g.successors("a")} == {"b", "c"}
        assert {e.tail for e in g.predecessors("b")} == {"a", "c"}
        assert g.out_degree("a") == 2
        assert g.in_degree("b") == 2

    def test_contains(self):
        g = DiGraph()
        g.add_node("a")
        assert "a" in g
        assert "b" not in g

    def test_remove_edge(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge("a", "b")


class TestDiGraphAlgorithms:
    def test_copy_is_independent(self):
        g = DiGraph()
        g.add_edge("a", "b")
        h = g.copy()
        h.add_edge("b", "a")
        assert not g.has_edge("b", "a")

    def test_subgraph_without_edges(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        h = g.subgraph_without_edges([("a", "b"), ("x", "y")])
        assert not h.has_edge("a", "b")
        assert h.has_edge("b", "c")

    def test_strongly_connected_cycle(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert g.is_strongly_connected()

    def test_not_strongly_connected_line(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert not g.is_strongly_connected()

    def test_empty_graph_not_strongly_connected(self):
        assert not DiGraph().is_strongly_connected()
