"""Tests for repro.lp.fastbuild — array-native COO compilation.

The load-bearing property is *bitwise* equivalence: the serving fast path
(:class:`~repro.core.online.IncrementalBatchCompiler`) must hand HiGHS the
exact same matrix as compiling :func:`build_incremental_spm`, so decisions
are identical by construction, not merely equal-objective.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from scipy import sparse

from repro.core.online import (
    build_incremental_spm,
    commit_decision,
    solve_batch,
)
from repro.exceptions import ModelError, SolverError
from repro.lp.fastbuild import compile_coo
from repro.lp.solvers import solve_compiled, solve_compiled_raw

from tests.test_properties import random_instance


def knapsack_compiled(**overrides):
    """The knapsack of test_lp_solvers, built straight from triplets."""
    kwargs = dict(
        objective=np.array([10.0, 7.0, 4.0, 3.0]),
        maximize=True,
        rows=np.zeros(4, dtype=np.int64),
        cols=np.arange(4, dtype=np.int64),
        data=np.array([5.0, 4.0, 3.0, 2.0]),
        num_rows=1,
        row_lower=np.array([-np.inf]),
        row_upper=np.array([7.0]),
        var_lower=np.zeros(4),
        var_upper=np.ones(4),
        integrality=np.ones(4, dtype=np.int8),
    )
    kwargs.update(overrides)
    return compile_coo(**kwargs)


class TestCompileCoo:
    def test_solves_knapsack(self):
        raw = solve_compiled_raw(knapsack_compiled())
        assert raw.is_optimal
        assert raw.objective == pytest.approx(13.0)
        assert np.round(raw.x).tolist() == [1, 0, 0, 1]

    def test_array_native_rejected_by_symbolic_entry(self):
        with pytest.raises(SolverError, match="array-native"):
            solve_compiled(knapsack_compiled())

    def test_duplicates_sum_like_expression_accumulation(self):
        # Two (0, 0) triplets must collapse to a single 3.0 coefficient,
        # exactly like repeated += into a LinExpr term.
        compiled = compile_coo(
            objective=np.array([1.0]),
            maximize=False,
            rows=np.array([0, 0]),
            cols=np.array([0, 0]),
            data=np.array([1.0, 2.0]),
            num_rows=1,
            row_lower=np.array([3.0]),
            row_upper=np.array([np.inf]),
            var_lower=np.zeros(1),
            var_upper=np.array([np.inf]),
            integrality=np.zeros(1, dtype=np.int8),
        )
        assert compiled.a_matrix.toarray().tolist() == [[3.0]]
        raw = solve_compiled_raw(compiled)  # min x s.t. 3x >= 3
        assert raw.objective == pytest.approx(1.0)

    def test_csr_matches_scipy_constructor_bitwise(self):
        # Duplicate-free triplets (like the serving build): the assembled
        # CSR must be bitwise identical to scipy's checked constructor.
        # With duplicates only the float summation order may differ.
        rng = np.random.default_rng(0)
        for _ in range(25):
            num_rows = int(rng.integers(1, 12))
            num_vars = int(rng.integers(1, 30))
            nnz = int(rng.integers(0, num_rows * num_vars))
            flat = rng.choice(num_rows * num_vars, size=nnz, replace=False)
            rows, cols = flat // num_vars, flat % num_vars
            data = rng.normal(size=nnz)
            compiled = compile_coo(
                objective=np.zeros(num_vars),
                maximize=False,
                rows=rows,
                cols=cols,
                data=data,
                num_rows=num_rows,
                row_lower=np.full(num_rows, -np.inf),
                row_upper=np.zeros(num_rows),
                var_lower=np.zeros(num_vars),
                var_upper=np.full(num_vars, np.inf),
                integrality=np.zeros(num_vars, dtype=np.int8),
            )
            ref = sparse.csr_matrix(
                (data, (rows, cols)), shape=(num_rows, num_vars)
            )
            ref.sum_duplicates()
            got = compiled.a_matrix
            assert got.shape == ref.shape
            assert np.array_equal(got.indptr, ref.indptr)
            assert np.array_equal(got.indices, ref.indices)
            assert np.array_equal(got.data, ref.data)

    def test_maximize_flips_sign(self):
        compiled = knapsack_compiled()
        assert compiled.sign == -1.0
        assert np.array_equal(compiled.c, -np.array([10.0, 7.0, 4.0, 3.0]))

    def test_no_variables_rejected(self):
        with pytest.raises(ModelError, match="no variables"):
            knapsack_compiled(objective=np.array([]))

    def test_mismatched_triplets_rejected(self):
        with pytest.raises(ModelError, match="triplet arrays disagree"):
            knapsack_compiled(rows=np.zeros(3, dtype=np.int64))

    def test_bad_row_bounds_rejected(self):
        with pytest.raises(ModelError, match="row bounds"):
            knapsack_compiled(row_lower=np.array([-np.inf, -np.inf]))

    def test_bad_column_arrays_rejected(self):
        with pytest.raises(ModelError, match="column arrays"):
            knapsack_compiled(var_lower=np.zeros(3))

    def test_row_index_out_of_range_rejected(self):
        with pytest.raises(ModelError, match="row index"):
            knapsack_compiled(rows=np.array([0, 0, 0, 1]))

    def test_column_index_out_of_range_rejected(self):
        with pytest.raises(ModelError, match="column index"):
            knapsack_compiled(cols=np.array([0, 1, 2, 4]))


fuzz_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestBatchCompilerEquivalence:
    """Fast-path batch MILPs replayed against the expression reference."""

    @given(random_instance())
    @fuzz_settings
    def test_bitwise_identical_models_and_decisions(self, instance):
        committed = np.zeros((instance.num_edges, instance.num_slots))
        charged = np.zeros(instance.num_edges)
        compiler = instance.batch_compiler()

        by_start: dict[int, list[int]] = {}
        for req in instance.requests:
            by_start.setdefault(req.start, []).append(req.request_id)

        for slot in sorted(by_start):
            batch = by_start[slot]
            ref = build_incremental_spm(
                instance, batch, committed, charged
            )[0].compile()
            fast, x_offsets = compiler.compile_batch(
                batch, committed, charged
            )

            assert np.array_equal(ref.c, fast.c)
            assert np.array_equal(ref.row_lower, fast.row_lower)
            assert np.array_equal(ref.row_upper, fast.row_upper)
            assert np.array_equal(ref.var_lower, fast.var_lower)
            assert np.array_equal(ref.var_upper, fast.var_upper)
            assert np.array_equal(ref.integrality, fast.integrality)
            assert ref.sign == fast.sign
            ref_a = ref.a_matrix.tocsr()
            ref_a.sum_duplicates()
            assert np.array_equal(ref_a.indptr, fast.a_matrix.indptr)
            assert np.array_equal(ref_a.indices, fast.a_matrix.indices)
            assert np.array_equal(ref_a.data, fast.a_matrix.data)
            assert int(x_offsets[-1]) == sum(
                instance.num_paths(rid) for rid in batch
            )

            d_fast = solve_batch(
                instance, batch, committed, charged, fast_path=True
            )
            d_expr = solve_batch(
                instance, batch, committed, charged, fast_path=False
            )
            assert d_fast.choices == d_expr.choices
            assert d_fast.objective == pytest.approx(d_expr.objective)

            # Evolve the residual state so later batches exercise non-zero
            # committed loads and charged units.
            commit_decision(
                instance, batch, list(d_fast.choices), committed, charged
            )
