"""The sharded broker: equivalence, coordination, and fleet-wide recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RecoveryError
from repro.net.topologies import b4
from repro.service import Broker, BrokerConfig
from repro.shard import (
    ShardConfig,
    ShardedBroker,
    ledger_wal_path,
    recover_sharded,
    shard_fingerprint,
    shard_wal_path,
)
from repro.state import FaultPlan, SimulatedCrash, config_fingerprint
from repro.state.faults import corrupt_tail, truncate_tail

_TOL = 1e-9

_BASE = dict(
    topology="sub-b4",
    num_cycles=2,
    slots_per_cycle=6,
    requests_per_cycle=18,
    seed=2019,
    time_limit=240.0,
)


def _run(tmp_path=None, *, resume=False, faults=None, **overrides):
    fields = {**_BASE, "shards": 2, **overrides}
    if tmp_path is not None:
        fields["wal_path"] = tmp_path / "fleet.wal"
    broker = ShardedBroker(ShardConfig(**fields), faults=faults)
    return broker.run(resume=resume)


class TestEquivalence:
    def test_single_shard_matches_the_monolithic_broker(self):
        mono = Broker(BrokerConfig(**_BASE)).run()
        sharded = _run(shards=1)
        assert sharded.decision_log() == mono.decision_log()
        assert sharded.profit == pytest.approx(mono.profit)

    def test_serial_runs_are_deterministic(self):
        first = _run()
        second = _run()
        assert first.decision_log() == second.decision_log()
        assert first.profit == second.profit
        assert first.purchases() == second.purchases()

    def test_pool_matches_serial(self):
        serial = _run()
        pooled = _run(workers=2)
        assert pooled.decision_log() == serial.decision_log()
        assert pooled.profit == serial.profit
        assert pooled.purchases() == serial.purchases()

    def test_partition_modes_both_cover_every_request(self):
        for partition in ("hash", "region"):
            report = _run(partition=partition, shards=3)
            for cycle in report.cycles:
                assert len(cycle.assignment()) == cycle.num_requests
                assert len(cycle.shard_results) == 3


class TestCoordination:
    def test_capped_run_is_slot_feasible_and_exercises_duals(self):
        # A deterministic bottleneck: every bid crosses the star's
        # (hub, DC1) link of capacity 1.  Each shard respects the cap
        # *locally*, so three shards can jointly oversubscribe it 3x —
        # exactly what the ledger's duals and the reconciliation eviction
        # must resolve.
        from repro.core.instance import SPMInstance
        from repro.net.topologies import star_topology
        from repro.service.ingest import TraceSource
        from repro.workload.request import Request, RequestSet

        topo = star_topology(6)
        topo.set_uniform_capacity(1)
        slots = 4
        trace = RequestSet(
            [
                Request(rid, f"DC{2 + (rid % 5)}", "DC1", 0, slots - 1,
                        1.0, 40.0 + rid)
                for rid in range(9)
            ],
            slots,
        )
        config = ShardConfig(
            **{**_BASE, "slots_per_cycle": slots, "requests_per_cycle": 9},
            shards=3,
        )
        broker = ShardedBroker(config, source=TraceSource(trace))
        broker.topology = topo
        report = broker.run()
        summary = report.summary()
        assert summary["reconciliation_evictions"] > 0
        assert summary["ledger_price_iterations"] > 0
        # Every committed cycle is feasible per (edge, slot) after the
        # eviction pass, replayed onto a fresh instance.
        instance = SPMInstance.build(topo, trace, k_paths=config.k_paths)
        for cycle in report.cycles:
            merged = cycle.assignment()
            loads = instance.loads(merged)
            assert float(loads.max(initial=0.0)) <= 1.0 + _TOL
            assert cycle.max_violation > 0 or not cycle.evicted
            for rid in cycle.evicted:
                assert merged[rid] is None
        # The second cycle solves against raised duals carried over from
        # the first, so the fleet over-admits less (or no more) over time.
        assert len(report.cycles[1].evicted) <= len(report.cycles[0].evicted)

    def test_telemetry_reports_per_shard_sections(self, tmp_path):
        report = _run(shards=2)
        summary = report.summary()
        assert summary["num_shards"] == 2
        path = tmp_path / "telemetry.json"
        report.dump_telemetry(path)
        import json

        payload = json.loads(path.read_text())
        assert set(payload["shards"]) == {"0", "1"}
        total = sum(
            section["decisions"] for section in payload["shards"].values()
        )
        assert total == summary["decisions"]


class TestFleetRecovery:
    def _baseline(self):
        return _run()

    def test_wal_layout(self, tmp_path):
        _run(tmp_path)
        base = tmp_path / "fleet.wal"
        assert shard_wal_path(base, 0).exists()
        assert shard_wal_path(base, 1).exists()
        assert ledger_wal_path(base).exists()

    def test_crash_resume_equals_uninterrupted(self, tmp_path):
        baseline = self._baseline()
        # A sharded cycle is 3 commits (2 shards + ledger); crashing at
        # the 4th lands mid-way through cycle 1 with cycle 0 fully
        # trusted, so the resume actually recovers a prefix.
        with pytest.raises(SimulatedCrash):
            _run(tmp_path, faults=FaultPlan(crash_after_cycles=4))
        resumed = _run(tmp_path, resume=True)
        assert resumed.decision_log() == baseline.decision_log()
        assert resumed.profit == baseline.profit
        assert resumed.purchases() == baseline.purchases()
        assert resumed.telemetry.recovered_batches > 0

    @pytest.mark.parametrize("torn_bytes", [1, 7])
    def test_torn_shard_wal_tail(self, tmp_path, torn_bytes):
        baseline = self._baseline()
        with pytest.raises(SimulatedCrash):
            _run(tmp_path, faults=FaultPlan(crash_after_cycles=1))
        truncate_tail(shard_wal_path(tmp_path / "fleet.wal", 1), torn_bytes)
        resumed = _run(tmp_path, resume=True)
        assert resumed.decision_log() == baseline.decision_log()
        assert resumed.profit == baseline.profit

    def test_corrupt_ledger_tail(self, tmp_path):
        baseline = self._baseline()
        with pytest.raises(SimulatedCrash):
            _run(tmp_path, faults=FaultPlan(crash_after_cycles=1))
        corrupt_tail(ledger_wal_path(tmp_path / "fleet.wal"), 8)
        resumed = _run(tmp_path, resume=True)
        assert resumed.decision_log() == baseline.decision_log()
        assert resumed.profit == baseline.profit

    def test_recovery_takes_the_minimum_committed_prefix(self, tmp_path):
        base_fingerprint = config_fingerprint(
            ShardConfig(**_BASE, shards=2, wal_path=tmp_path / "fleet.wal")
        )

        def recovered():
            return recover_sharded(
                tmp_path / "fleet.wal",
                base_fingerprint=base_fingerprint,
                num_shards=2,
                mode="hash",
            )

        # A crash right after the FIRST journal's cycle commit leaves
        # shard 0 a cycle ahead of shard 1 and the ledger: the fleet
        # trusts only the minimum, i.e. nothing yet.
        with pytest.raises(SimulatedCrash):
            _run(tmp_path, faults=FaultPlan(crash_after_cycles=1))
        state = recovered()
        assert state.next_cycle == 0
        assert state.duals is None
        assert len(state.shard_cycles[0]) == 1  # ahead, but untrusted

        # A clean run commits everything; then deleting one shard journal
        # drags the fleet's trusted prefix back to zero.
        for path in tmp_path.glob("fleet.wal*"):
            path.unlink()
        _run(tmp_path)
        state = recovered()
        assert state.next_cycle == 2
        assert state.duals is not None
        shard_wal_path(tmp_path / "fleet.wal", 0).unlink()
        assert recovered().next_cycle == 0

    def test_resume_under_different_sharding_refuses(self, tmp_path):
        _run(tmp_path)
        with pytest.raises(RecoveryError):
            _run(tmp_path, resume=True, shards=3)

    def test_shard_fingerprints_are_distinct(self):
        base = "abc123"
        prints = {
            shard_fingerprint(base, 2, "hash", 0),
            shard_fingerprint(base, 2, "hash", 1),
            shard_fingerprint(base, 2, "hash", "ledger"),
            shard_fingerprint(base, 3, "hash", 0),
            shard_fingerprint(base, 2, "region", 0),
        }
        assert len(prints) == 5
