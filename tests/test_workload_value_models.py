"""Tests for repro.workload.value_models."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.net.topologies import b4, line_topology
from repro.workload.value_models import FlatRateValueModel, PriceAwareValueModel


class TestFlatRateValueModel:
    def test_value_formula(self):
        model = FlatRateValueModel(unit_price=3.0)
        value = model.value(line_topology(3), "DC1", "DC3", 0.5, 4, np.random.default_rng(0))
        assert value == pytest.approx(3.0 * 0.5 * 4)

    def test_geography_blind(self):
        model = FlatRateValueModel(unit_price=1.0)
        topo = b4()
        rng = np.random.default_rng(0)
        near = model.value(topo, "DC1", "DC2", 0.3, 2, rng)
        far = model.value(topo, "DC1", "DC12", 0.3, 2, rng)
        assert near == far

    def test_bad_price(self):
        with pytest.raises(ValueError):
            FlatRateValueModel(unit_price=0.0)


class TestPriceAwareValueModel:
    def test_deterministic_without_noise(self):
        model = PriceAwareValueModel(markup=2.0, noise=0.0)
        topo = line_topology(3, price=1.5)  # DC1->DC3 cheapest path costs 3.0
        value = model.value(topo, "DC1", "DC3", 0.5, 2, np.random.default_rng(0))
        assert value == pytest.approx(2.0 * 0.5 * 2 * 3.0)

    def test_noise_bounds(self):
        model = PriceAwareValueModel(markup=1.0, noise=0.5)
        topo = line_topology(2)
        rng = np.random.default_rng(1)
        base = 0.5 * 3 * 1.0
        for _ in range(50):
            value = model.value(topo, "DC1", "DC2", 0.5, 3, rng)
            assert 0.5 * base <= value <= 1.5 * base

    def test_distance_increases_value(self):
        model = PriceAwareValueModel(markup=1.0, noise=0.0)
        topo = b4()
        rng = np.random.default_rng(0)
        near = model.value(topo, "DC1", "DC2", 0.3, 2, rng)
        far = model.value(topo, "DC1", "DC12", 0.3, 2, rng)
        assert far > near

    def test_path_price_cached(self):
        model = PriceAwareValueModel(noise=0.0)
        topo = b4()
        rng = np.random.default_rng(0)
        model.value(topo, "DC1", "DC2", 0.1, 1, rng)
        assert (id(topo), "DC1", "DC2") in model._path_price_cache

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PriceAwareValueModel(markup=0.0)
        with pytest.raises(ValueError):
            PriceAwareValueModel(noise=-0.1)
        with pytest.raises(WorkloadError):
            PriceAwareValueModel(noise=1.0)
