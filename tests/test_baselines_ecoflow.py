"""Tests for the EcoFlow baseline."""

import pytest

from repro.baselines.ecoflow import solve_ecoflow
from repro.core.instance import SPMInstance
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestSolveEcoflow:
    def test_declines_unprofitable_request(self, diamond):
        # A lone request whose bid (0.5) is below the 2-unit-priced cheapest
        # path cost (2 x 1 unit x price 1 = 2).
        requests = RequestSet(
            [make_request(0, rate=0.5, value=0.5)], num_slots=1
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        result = solve_ecoflow(inst)
        assert result.schedule.num_accepted == 0

    def test_accepts_profitable_request(self, diamond):
        requests = RequestSet(
            [make_request(0, rate=0.5, value=5.0)], num_slots=1
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        result = solve_ecoflow(inst)
        assert result.schedule.num_accepted == 1
        assert result.schedule.assignment[0] == 0, "cheapest marginal path"

    def test_marginal_cost_amortization(self, diamond):
        # First request buys the unit (marginal 2 > 1.5? no: accepts at
        # value 3); the second overlapping small request rides the same
        # unit at zero marginal cost, so even a tiny bid is accepted.
        requests = RequestSet(
            [
                make_request(0, rate=0.6, value=3.0),
                make_request(1, rate=0.2, value=0.01),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        result = solve_ecoflow(inst)
        assert result.schedule.num_accepted == 2

    def test_myopia_declines_first_of_a_profitable_pair(self, diamond):
        # Each request alone is unprofitable (1.2 < 2) but together they
        # share the unit (2.4 > 2).  The greedy sees only request 0 first
        # and declines it, then declines request 1 for the same reason —
        # exactly the myopia the paper exploits in Fig. 5.
        requests = RequestSet(
            [
                make_request(0, rate=0.5, value=1.2),
                make_request(1, rate=0.5, value=1.2),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        result = solve_ecoflow(inst)
        assert result.schedule.num_accepted == 0
        assert result.profit == 0.0

    def test_profit_never_negative(self, small_sub_b4_instance):
        result = solve_ecoflow(small_sub_b4_instance)
        assert result.profit >= -1e-9, (
            "accept-only-if-bid-exceeds-marginal-cost cannot lose money"
        )

    def test_charged_covers_loads(self, small_sub_b4_instance):
        result = solve_ecoflow(small_sub_b4_instance)
        peaks = result.schedule.loads.max(axis=1)
        for idx, key in enumerate(small_sub_b4_instance.edges):
            assert peaks[idx] <= result.schedule.charged[key] + 1e-9

    def test_deterministic(self, small_sub_b4_instance):
        a = solve_ecoflow(small_sub_b4_instance)
        b = solve_ecoflow(small_sub_b4_instance)
        assert a.schedule.assignment == b.schedule.assignment
