"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [300, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all lines share one width"

    def test_title(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in text
        assert "1.2346" not in text

    def test_ints_and_strings_passthrough(self):
        text = format_table(["n", "s"], [[7, "hello"]])
        assert "7" in text and "hello" in text

    def test_bool_not_formatted_as_float(self):
        text = format_table(["flag"], [[True]])
        assert "True" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
