"""Tests for repro.experiments.multi_seed."""

import math

import pytest

from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.multi_seed import aggregate_over_seeds


def fake_config(seed=0, **overrides):
    params = {"topology": "sub-b4", "request_counts": (10,), "seed": seed}
    params.update(overrides)
    return ExperimentConfig(**params)


def make_runner(values_by_seed):
    """A runner returning one row per sweep point with seed-keyed profits."""

    def runner(config):
        profit = values_by_seed[config.seed]
        return ExperimentResult(
            experiment="fake",
            description="fake experiment",
            headers=["requests", "solution", "profit"],
            rows=[[k, "Metis", profit] for k in config.request_counts],
        )

    return runner


class TestAggregateOverSeeds:
    def test_mean_and_std(self):
        runner = make_runner({1: 1.0, 2: 3.0})
        result = aggregate_over_seeds(
            runner, fake_config, seeds=(1, 2), request_counts=(10, 20)
        )
        assert result.headers == [
            "requests",
            "solution",
            "profit_mean",
            "profit_std",
            "n_runs",
        ]
        first = result.rows[0]
        assert first[:2] == [10, "Metis"]
        assert first[2] == pytest.approx(2.0)
        assert first[3] == pytest.approx(math.sqrt(2.0))
        assert first[4] == 2

    def test_single_seed_zero_std(self):
        runner = make_runner({7: 5.0})
        result = aggregate_over_seeds(runner, fake_config, seeds=(7,))
        assert result.rows[0][3] == 0.0

    def test_nan_rows_partially_aggregated(self):
        def runner(config):
            profit = float("nan") if config.seed == 2 else 4.0
            return ExperimentResult(
                experiment="fake",
                description="",
                headers=["requests", "solution", "profit"],
                rows=[[10, "OPT", profit]],
            )

        result = aggregate_over_seeds(runner, fake_config, seeds=(1, 2, 3))
        row = result.rows[0]
        assert row[2] == pytest.approx(4.0)
        assert row[4] == 2, "NaN runs drop out of the aggregate"

    def test_requests_column_is_key_not_metric(self):
        runner = make_runner({1: 1.0})
        result = aggregate_over_seeds(
            runner, fake_config, seeds=(1,), request_counts=(10, 20)
        )
        assert result.column("requests") == [10, 20]

    def test_explicit_key_headers(self):
        runner = make_runner({1: 1.0, 2: 2.0})
        result = aggregate_over_seeds(
            runner,
            fake_config,
            seeds=(1, 2),
            key_headers=("requests", "solution"),
        )
        assert result.column("profit_mean") == [pytest.approx(1.5)]
        with pytest.raises(ValueError, match="unknown key"):
            aggregate_over_seeds(
                runner, fake_config, seeds=(1,), key_headers=("ghost",)
            )

    def test_header_mismatch_rejected(self):
        calls = {"n": 0}

        def runner(config):
            calls["n"] += 1
            headers = ["a"] if calls["n"] == 1 else ["b"]
            return ExperimentResult("x", "", headers, [[1.0]])

        with pytest.raises(ValueError, match="headers"):
            aggregate_over_seeds(runner, fake_config, seeds=(1, 2))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            aggregate_over_seeds(make_runner({}), fake_config, seeds=())

    def test_real_experiment_end_to_end(self):
        from repro.experiments.fig5 import run_fig5

        def factory(seed=0, **overrides):
            return ExperimentConfig(
                topology="b4",
                request_counts=(25,),
                seed=seed,
                theta=3,
                maa_rounds=1,
                **overrides,
            )

        result = aggregate_over_seeds(run_fig5, factory, seeds=(1, 2))
        assert "metis_profit_mean" in result.headers
        assert result.rows and result.rows[0][-1] == 2
