"""Tests for the array-native Metis hot loop (repro.core.fastform).

The load-bearing property mirrors test_lp_fastbuild: *bitwise* equivalence
between the fast path and the expression-layer reference.  The
FormulationCompiler must hand HiGHS the exact same RL-SPM / BL-SPM / SPM
matrices as the builders in repro.core.formulations, the vectorized
estimator must reproduce the reference walk to exact float equality, and a
full Metis run must produce a bit-identical MetisOutcome either way.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.estimator import PessimisticEstimator, VectorizedEstimator
from repro.core.fastform import FormulationCompiler
from repro.core.formulations import build_bl_spm, build_rl_spm, build_spm
from repro.core.instance import SPMInstance
from repro.core.maa import solve_maa
from repro.core.metis import Metis, MinUtilizationLimiter, prune_unprofitable
from repro.core.schedule import Schedule
from repro.core.taa import _build_estimator, _build_estimator_fast, solve_taa
from repro.exceptions import ModelError
from repro.lp.fastbuild import with_row_upper
from repro.lp.solvers import solve_compiled_raw

from tests.test_properties import random_instance

fuzz_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

metis_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def example_capacities(instance):
    """Deterministic integer capacities including zero-capacity edges."""
    return {key: idx % 4 for idx, key in enumerate(instance.edges)}


def assert_models_bitwise_equal(ref_model, fast_compiled):
    """The reference compile and the fast build down to the bit patterns."""
    ref = ref_model.compile()
    assert ref.c.tobytes() == fast_compiled.c.tobytes()
    assert np.array_equal(ref.row_lower, fast_compiled.row_lower)
    assert ref.row_upper.tobytes() == fast_compiled.row_upper.tobytes()
    assert np.array_equal(ref.var_lower, fast_compiled.var_lower)
    assert np.array_equal(ref.var_upper, fast_compiled.var_upper)
    assert np.array_equal(ref.integrality, fast_compiled.integrality)
    assert ref.sign == fast_compiled.sign
    assert ref.objective_constant == fast_compiled.objective_constant
    ref_a = ref.a_matrix.tocsr()
    ref_a.sum_duplicates()
    assert ref_a.shape == fast_compiled.a_matrix.shape
    assert np.array_equal(ref_a.indptr, fast_compiled.a_matrix.indptr)
    assert np.array_equal(ref_a.indices, fast_compiled.a_matrix.indices)
    assert ref_a.data.tobytes() == fast_compiled.a_matrix.data.tobytes()


class TestFormulationCompilerEquivalence:
    """Tentpole property (a): compiled formulations are bitwise identical."""

    @given(random_instance())
    @fuzz_settings
    def test_all_three_formulations_bitwise_identical(self, instance):
        compiler = instance.formulation_compiler()
        capacities = example_capacities(instance)
        for integral in (False, True):
            assert_models_bitwise_equal(
                build_rl_spm(instance, integral=integral).model,
                compiler.compile_rl_spm(instance, integral=integral).compiled,
            )
            assert_models_bitwise_equal(
                build_bl_spm(instance, capacities, integral=integral).model,
                compiler.compile_bl_spm(
                    instance, capacities, integral=integral
                ).compiled,
            )
            assert_models_bitwise_equal(
                build_spm(instance, integral=integral).model,
                compiler.compile_spm(instance, integral=integral).compiled,
            )

    @given(random_instance())
    @fuzz_settings
    def test_bl_capacity_rhs_update_reuses_matrix(self, instance):
        compiler = instance.formulation_compiler()
        caps_a = example_capacities(instance)
        first = compiler.compile_bl_spm(instance, caps_a)
        caps_b = {key: cap + 1 for key, cap in caps_a.items()}
        second = compiler.compile_bl_spm(instance, caps_b)
        # Same request set: the sparse matrix is shared, only RHS rebuilt.
        assert second.compiled.a_matrix is first.compiled.a_matrix
        assert_models_bitwise_equal(
            build_bl_spm(instance, caps_b).model, second.compiled
        )

    def test_bl_missing_capacities_rejected(self, diamond_instance):
        compiler = diamond_instance.formulation_compiler()
        partial = {diamond_instance.edges[0]: 1}
        with pytest.raises(ModelError, match="capacities missing"):
            compiler.compile_bl_spm(diamond_instance, partial)

    @given(random_instance())
    @fuzz_settings
    def test_weights_from_raw_matches_fractional_x(self, instance):
        from repro.core.formulations import fractional_x

        compiler = instance.formulation_compiler()
        formulation = compiler.compile_rl_spm(instance)
        raw = solve_compiled_raw(formulation.compiled)
        problem = build_rl_spm(instance)
        solution = problem.model.solve()
        fast = FormulationCompiler.weights_from_raw(formulation, raw.x)
        ref = fractional_x(problem, solution)
        assert fast == ref


class TestZeroCopyRestrict:
    """Tentpole property (c): restrict chains equal building from scratch."""

    @given(random_instance())
    @fuzz_settings
    def test_restrict_chain_matches_scratch_build(self, instance):
        ids = instance.requests.request_ids
        sub = instance.restrict(ids[::2])
        sub2 = sub.restrict(sub.requests.request_ids[: max(1, len(ids) // 4)])
        for child in (sub, sub2):
            scratch = SPMInstance(
                instance.topology,
                instance.requests.subset(child.requests.request_ids),
                {rid: instance.paths[rid] for rid in child.requests.request_ids},
            )
            assert child.edges == scratch.edges
            assert child.edge_index == scratch.edge_index
            assert np.array_equal(child.prices, scratch.prices)
            assert child.requests.request_ids == scratch.requests.request_ids
            assert set(child.path_edges) == set(scratch.path_edges)
            for rid in child.path_edges:
                for got, want in zip(
                    child.path_edges[rid], scratch.path_edges[rid]
                ):
                    assert np.array_equal(got, want)
            # And the compiled formulations agree with the scratch build.
            capacities = example_capacities(instance)
            assert_models_bitwise_equal(
                build_bl_spm(scratch, capacities).model,
                child.formulation_compiler()
                .compile_bl_spm(child, capacities)
                .compiled,
            )

    @given(random_instance())
    @fuzz_settings
    def test_restrict_shares_parent_state(self, instance):
        compiler = instance.formulation_compiler()
        batch = instance.batch_compiler()
        sub = instance.restrict(instance.requests.request_ids[:1])
        assert sub.topology is instance.topology
        assert sub.edges is instance.edges
        assert sub.edge_index is instance.edge_index
        assert sub.prices is instance.prices
        assert sub.formulation_compiler() is compiler
        assert sub.batch_compiler() is batch
        rid = sub.requests.request_ids[0]
        for got, want in zip(sub.path_edges[rid], instance.path_edges[rid]):
            assert got is want


class TestVectorizedEstimatorEquivalence:
    """Tentpole property (b): exact float equality of the estimator kernel."""

    @staticmethod
    def _build_both(instance, capacities):
        formulation = instance.formulation_compiler().compile_bl_spm(
            instance, capacities
        )
        raw = solve_compiled_raw(formulation.compiled)
        weights = FormulationCompiler.weights_from_raw(formulation, raw.x)
        requests = instance.requests.requests
        rate_max = max(req.rate for req in requests)
        value_max = max(req.value for req in requests)
        if value_max <= 0:
            return None, None
        mu = 0.5
        kwargs = dict(
            mu=mu,
            t0=0.7,
            t_cap=math.log(1.0 / mu),
            rate_max=rate_max,
            value_max=value_max,
            revenue_floor_norm=0.3,
        )
        ref = _build_estimator(instance, weights, capacities, **kwargs)
        fast = _build_estimator_fast(
            instance, weights, capacities, formulation=formulation, **kwargs
        )
        return ref, fast

    @given(random_instance())
    @fuzz_settings
    def test_build_walk_and_initial_match_exactly(self, instance):
        ref, fast = self._build_both(instance, example_capacities(instance))
        if ref is None:
            return  # all-zero bids: solve_taa never builds an estimator
        assert isinstance(ref, PessimisticEstimator)
        assert isinstance(fast, VectorizedEstimator)
        # Same terms, constants and per-request factors, bit for bit.
        assert ref.log_consts.tobytes() == fast.log_consts.tobytes()
        assert ref.log_phi.tobytes() == fast.log_phi.tobytes()
        # Same estimator value and the same greedy walk, exactly.
        assert ref.initial_log_value() == fast.initial_log_value()
        ref_choices, ref_final = ref.walk()
        fast_choices, fast_final = fast.walk()
        assert ref_choices == fast_choices
        assert ref_final == fast_final

    @given(random_instance())
    @fuzz_settings
    def test_solve_taa_bit_identical(self, instance):
        capacities = example_capacities(instance)
        fast = solve_taa(instance, capacities, fast_path=True)
        ref = solve_taa(instance, capacities, fast_path=False)
        assert fast.schedule.assignment == ref.schedule.assignment
        assert fast.schedule.charged == ref.schedule.charged
        assert fast.relaxation_revenue == ref.relaxation_revenue
        assert fast.mu == ref.mu
        assert fast.revenue_floor == ref.revenue_floor
        assert (
            fast.estimator_initial == ref.estimator_initial
            or (
                math.isnan(fast.estimator_initial)
                and math.isnan(ref.estimator_initial)
            )
        )
        assert (
            fast.estimator_final == ref.estimator_final
            or (
                math.isnan(fast.estimator_final)
                and math.isnan(ref.estimator_final)
            )
        )
        assert fast.num_repairs == ref.num_repairs
        assert fast.num_augmented == ref.num_augmented


class TestFastPathOutcomes:
    """Acceptance criterion: MetisOutcome bit-identical fast vs expression."""

    @given(random_instance())
    @fuzz_settings
    def test_solve_maa_bit_identical(self, instance):
        fast = solve_maa(instance, rng=0, fast_path=True)
        ref = solve_maa(instance, rng=0, fast_path=False)
        assert fast.schedule.assignment == ref.schedule.assignment
        assert fast.schedule.charged == ref.schedule.charged
        assert fast.fractional_cost == ref.fractional_cost
        assert fast.fractional_weights == ref.fractional_weights
        assert fast.alpha == ref.alpha

    @given(random_instance())
    @metis_settings
    def test_metis_outcome_bit_identical(self, instance):
        fast = Metis(theta=3, fast_path=True).solve(instance, rng=7)
        ref = Metis(theta=3, fast_path=False).solve(instance, rng=7)
        assert fast.best.profit == ref.best.profit
        assert fast.best.source == ref.best.source
        assert fast.best.round_index == ref.best.round_index
        assert fast.best.capacities == ref.best.capacities
        if ref.best.schedule is None:
            assert fast.best.schedule is None
        else:
            assert fast.best.schedule.assignment == ref.best.schedule.assignment
            assert fast.best.schedule.charged == ref.best.schedule.charged
        assert fast.initial_profit == ref.initial_profit
        assert fast.rounds == ref.rounds


class TestWithRowUpper:
    def test_shares_matrix_and_replaces_bounds(self, monkeypatch):
        instance_caps = np.array([1.0, 2.0])
        from repro.lp.fastbuild import compile_coo

        compiled = compile_coo(
            objective=np.array([1.0, 1.0]),
            maximize=True,
            rows=np.array([0, 1]),
            cols=np.array([0, 1]),
            data=np.array([1.0, 1.0]),
            num_rows=2,
            row_lower=np.full(2, -np.inf),
            row_upper=np.zeros(2),
            var_lower=np.zeros(2),
            var_upper=np.ones(2),
            integrality=np.zeros(2, dtype=np.int8),
        )
        updated = with_row_upper(compiled, instance_caps)
        assert updated.a_matrix is compiled.a_matrix
        assert updated.c is compiled.c
        assert np.array_equal(updated.row_upper, instance_caps)
        assert np.array_equal(compiled.row_upper, np.zeros(2))

    def test_size_mismatch_rejected(self):
        from repro.lp.fastbuild import compile_coo

        compiled = compile_coo(
            objective=np.array([1.0]),
            maximize=False,
            rows=np.array([0]),
            cols=np.array([0]),
            data=np.array([1.0]),
            num_rows=1,
            row_lower=np.array([-np.inf]),
            row_upper=np.array([0.0]),
            var_lower=np.zeros(1),
            var_upper=np.ones(1),
            integrality=np.zeros(1, dtype=np.int8),
        )
        with pytest.raises(ModelError, match="row_upper"):
            with_row_upper(compiled, np.zeros(3))


class TestSatellites:
    """The smaller hot-loop fixes ride along with behavior preserved."""

    @given(random_instance())
    @fuzz_settings
    def test_prune_matches_resort_every_pass_reference(self, instance):
        schedule = solve_maa(instance, rng=1).schedule

        # The pre-optimization reference: rebuild and re-sort the accepted
        # list on every outer pass.
        assignment = dict(schedule.assignment)
        loads = schedule.loads.copy()
        prices = instance.prices

        def marginal_saving(req, path_idx):
            window = slice(req.start, req.end + 1)
            edge_indices = instance.path_edges[req.request_id][path_idx]
            before = np.ceil(loads[edge_indices].max(axis=1) - 1e-9).clip(min=0)
            loads[edge_indices, window] -= req.rate
            after = np.ceil(loads[edge_indices].max(axis=1) - 1e-9).clip(min=0)
            loads[edge_indices, window] += req.rate
            return float((prices[edge_indices] * (before - after)).sum())

        while True:
            accepted = [
                instance.request(rid)
                for rid, p in assignment.items()
                if p is not None
            ]
            removed_any = False
            for req in sorted(accepted, key=lambda r: r.value):
                path_idx = assignment[req.request_id]
                if marginal_saving(req, path_idx) > req.value:
                    window = slice(req.start, req.end + 1)
                    edges = instance.path_edges[req.request_id][path_idx]
                    loads[edges, window] -= req.rate
                    assignment[req.request_id] = None
                    removed_any = True
            if not removed_any:
                break

        assert prune_unprofitable(instance, schedule).assignment == assignment

    @given(random_instance())
    @fuzz_settings
    def test_limiter_matches_scalar_reference(self, instance):
        schedule = solve_maa(instance, rng=2).schedule
        capacities = {
            key: idx % 4 for idx, key in enumerate(instance.edges)
        }
        mean_loads = schedule.loads.mean(axis=1)
        best_key, best_util = None, math.inf
        for idx, key in enumerate(instance.edges):
            cap = capacities.get(key, 0)
            if cap <= 0:
                continue
            util = mean_loads[idx] / cap
            if util < best_util:
                best_util, best_key = util, key
        expected = None
        if best_key is not None:
            expected = dict(capacities)
            expected[best_key] = max(0, expected[best_key] - 1)
        assert MinUtilizationLimiter().limit(
            instance, schedule, capacities
        ) == expected

    def test_limiter_tie_break_lowest_edge_index(self, diamond_instance):
        # Zero loads make every positive-capacity edge utilization 0.0; the
        # first edge in instance order must win the tie.
        schedule = Schedule(
            diamond_instance,
            {rid: None for rid in diamond_instance.requests.request_ids},
        )
        capacities = {key: 2 for key in diamond_instance.edges}
        shrunk = MinUtilizationLimiter().limit(
            diamond_instance, schedule, capacities
        )
        first = diamond_instance.edges[0]
        assert shrunk[first] == 1
        assert all(
            shrunk[key] == 2 for key in diamond_instance.edges if key != first
        )

    def test_schedule_caches_revenue_and_cost(self, diamond_instance):
        rids = diamond_instance.requests.request_ids
        schedule = Schedule(diamond_instance, {rid: 0 for rid in rids})
        revenue, cost = schedule.revenue, schedule.cost
        assert schedule._revenue is not None
        assert schedule._cost is not None
        # Cached values are returned on later reads, and profit uses them.
        assert schedule.revenue == revenue
        assert schedule.cost == cost
        assert schedule.profit == revenue - cost
        expected_revenue = sum(
            diamond_instance.request(rid).value for rid in rids
        )
        assert revenue == expected_revenue
