"""Tests for repro.core.flexible — slideable-window SPM."""

import pytest

from repro.baselines.opt import solve_opt_spm
from repro.core.flexible import flexibility_gain, solve_flexible_spm
from repro.core.instance import SPMInstance
from repro.exceptions import WorkloadError
from repro.sim.validator import validate_schedule
from repro.workload.request import RequestSet

from tests.conftest import make_request


@pytest.fixture
def peak_pair(diamond):
    """Two rate-0.6 requests forced onto the same slot unless one slides.

    Together at slot 0 they need 2 units on each cheap link (cost 4);
    serialized over slots 0 and 1 they share 1 unit (cost 2).
    """
    requests = RequestSet(
        [
            make_request(0, start=0, end=0, rate=0.6, value=3.0),
            make_request(1, start=0, end=0, rate=0.6, value=3.0),
        ],
        num_slots=3,
    )
    return SPMInstance.build(diamond, requests, k_paths=2)


class TestSolveFlexibleSpm:
    def test_zero_slack_equals_opt_spm(self, small_sub_b4_instance):
        flexible = solve_flexible_spm(small_sub_b4_instance, 0)
        exact = solve_opt_spm(small_sub_b4_instance)
        assert flexible.profit == pytest.approx(exact.profit, abs=1e-6)
        assert flexible.num_shifted == 0

    def test_slack_depeaks_the_pair(self, peak_pair):
        rigid = solve_flexible_spm(peak_pair, 0)
        flexible = solve_flexible_spm(peak_pair, 1)
        assert rigid.profit == pytest.approx(6.0 - 4.0)
        assert flexible.profit == pytest.approx(6.0 - 2.0)
        assert flexible.num_shifted == 1

    def test_offsets_respect_cycle_end(self, peak_pair):
        # Slack beyond the cycle cannot push windows outside it.
        result = solve_flexible_spm(peak_pair, 99)
        for request_id, offset in result.offsets.items():
            req = peak_pair.request(request_id)
            assert req.end + offset < peak_pair.num_slots

    def test_schedule_validates(self, small_sub_b4_instance):
        result = solve_flexible_spm(small_sub_b4_instance, 2)
        assert validate_schedule(result.schedule).ok

    def test_objective_matches_schedule_profit(self, small_sub_b4_instance):
        result = solve_flexible_spm(small_sub_b4_instance, 1)
        assert result.objective == pytest.approx(result.profit, abs=1e-6)

    def test_per_request_slack_map(self, peak_pair):
        # Only request 1 may slide.
        result = solve_flexible_spm(peak_pair, {0: 0, 1: 1})
        assert result.profit == pytest.approx(4.0)
        assert result.offsets.get(0, 0) == 0

    def test_negative_slack_rejected(self, peak_pair):
        with pytest.raises(WorkloadError):
            solve_flexible_spm(peak_pair, -1)
        with pytest.raises(WorkloadError):
            solve_flexible_spm(peak_pair, {0: -2, 1: 0})


class TestFlexibilityGain:
    def test_profit_monotone_in_slack(self, small_sub_b4_instance):
        curve = flexibility_gain(small_sub_b4_instance, (0, 1, 2))
        profits = [profit for _, profit, _ in curve]
        assert profits == sorted(profits), (
            "more scheduling freedom can never lower the exact optimum"
        )

    def test_curve_shape(self, peak_pair):
        curve = flexibility_gain(peak_pair, (0, 1))
        assert curve[0][0] == 0 and curve[1][0] == 1
        assert curve[1][1] > curve[0][1]

    def test_bad_levels(self, peak_pair):
        with pytest.raises(WorkloadError):
            flexibility_gain(peak_pair, (0, -1))
