"""WallClock tests: SimClock parity, deadlines, resume back-dating."""

from __future__ import annotations

import pytest

from repro.exceptions import GatewayError
from repro.gateway.wallclock import WallClock
from repro.service.broker import run_cycle
from repro.service.clock import CycleClock, SimClock
from repro.workload.generator import WorkloadConfig, generate_workload


class FakeTime:
    """A manually advanced monotonic source."""

    def __init__(self, value: float = 100.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


class TestStructuralParity:
    def test_implements_cycle_clock_protocol(self):
        clock = WallClock(12, window=3)
        assert isinstance(clock, CycleClock)

    @pytest.mark.parametrize("slots,window", [(12, 1), (12, 3), (10, 4), (5, 5)])
    def test_tick_stream_matches_simclock(self, slots, window):
        sim = SimClock(slots, window=window, num_cycles=3)
        wall = WallClock(slots, window=window, num_cycles=3)
        for cycle in range(3):
            assert list(wall.windows(cycle)) == list(sim.windows(cycle))
        assert wall.windows_per_cycle == sim.windows_per_cycle
        for slot in range(slots):
            assert wall.window_of(slot) == sim.window_of(slot)

    def test_bounded_clock_enumerates_cycles(self):
        wall = WallClock(4, num_cycles=2)
        assert list(wall.cycles()) == [0, 1]
        assert len(list(wall.ticks())) == 2 * 4

    def test_unbounded_clock_refuses_enumeration(self):
        with pytest.raises(GatewayError, match="unbounded"):
            WallClock(4).cycles()

    def test_validation(self):
        with pytest.raises(ValueError):
            WallClock(0)
        with pytest.raises(ValueError):
            WallClock(4, window=0)
        with pytest.raises(ValueError):
            WallClock(4, num_cycles=0)
        with pytest.raises(ValueError):
            WallClock(4, slot_seconds=0.0)
        with pytest.raises(ValueError):
            WallClock(4).window_of(4)


class TestWallTime:
    def test_requires_start(self):
        clock = WallClock(4)
        assert not clock.started
        with pytest.raises(GatewayError, match="start"):
            clock.elapsed()

    def test_deadlines_are_slot_multiples_from_epoch(self):
        now = FakeTime(1000.0)
        clock = WallClock(4, window=2, slot_seconds=0.5, now=now)
        clock.start()
        ticks = list(clock.windows(1))
        # Cycle 1's windows end at global slots 6 and 8.
        assert clock.deadline(ticks[0]) == pytest.approx(1000.0 + 6 * 0.5)
        assert clock.deadline(ticks[1]) == pytest.approx(1000.0 + 8 * 0.5)
        assert clock.remaining(clock.deadline(ticks[0])) == pytest.approx(3.0)
        now.value = 1004.0
        assert clock.remaining(clock.deadline(ticks[0])) == 0.0

    def test_current_slot_tracks_time(self):
        now = FakeTime(0.0)
        clock = WallClock(4, slot_seconds=1.0, now=now)
        clock.start()
        assert (clock.current_cycle(), clock.slot_in_cycle()) == (0, 0)
        now.value = 5.5
        assert clock.current_slot() == 5
        assert (clock.current_cycle(), clock.slot_in_cycle()) == (1, 1)

    def test_resume_backdates_epoch(self):
        now = FakeTime(50.0)
        clock = WallClock(4, slot_seconds=1.0, now=now)
        clock.start(cycle=3)
        # Cycles 0-2 are entirely in the past; serving resumes at cycle 3.
        assert clock.current_cycle() == 3
        last_old = list(clock.windows(2))[-1]
        assert clock.remaining(clock.deadline(last_old)) == 0.0
        first_new = next(iter(clock.windows(3)))
        assert clock.deadline(first_new) == pytest.approx(51.0)


class TestRunCycleClockInjection:
    def test_wallclock_and_simclock_decide_identically(self, sub_b4_topology):
        """run_cycle cannot tell the clocks apart: same bids, same ledger."""
        requests = generate_workload(
            sub_b4_topology,
            WorkloadConfig(num_requests=25, num_slots=6),
            rng=11,
        )
        baseline = run_cycle(sub_b4_topology, requests, window=2)
        injected = run_cycle(
            sub_b4_topology,
            requests,
            clock=WallClock(6, window=2, num_cycles=1),
        )
        assert injected.assignment == baseline.assignment
        assert injected.profit == pytest.approx(baseline.profit)
        assert injected.purchased == baseline.purchased
        assert [r.window_start for r in injected.batches] == [
            r.window_start for r in baseline.batches
        ]
