"""Tests for the SUBSET-SUM -> SPM reduction (Theorem 1)."""

import pytest

from repro.baselines.opt import solve_opt_spm
from repro.core.hardness import (
    reduction_sigma,
    spm_from_subset_sum,
    subset_from_solution,
)


class TestConstruction:
    def test_instance_shape(self):
        instance, sigma = spm_from_subset_sum([3, 4, 5], target=7)
        assert instance.num_requests == 3
        assert instance.num_slots == 1
        assert 0 < sigma < 2 - 12 / 7

    def test_rates_and_values_scaled(self):
        instance, _ = spm_from_subset_sum([3, 4], target=5)
        req = instance.request(0)
        assert req.rate == pytest.approx(3 / 5)
        assert req.value == pytest.approx(3 / 5)

    def test_normalization_enforced(self):
        with pytest.raises(ValueError, match="target < sum"):
            spm_from_subset_sum([1, 1], target=5)  # sum <= target
        with pytest.raises(ValueError, match="target < sum"):
            spm_from_subset_sum([10, 10], target=5)  # sum >= 2*target

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            spm_from_subset_sum([], target=1)
        with pytest.raises(ValueError):
            spm_from_subset_sum([0, 3], target=2)
        with pytest.raises(ValueError):
            spm_from_subset_sum([3, 4], target=0)
        with pytest.raises(ValueError):
            spm_from_subset_sum([3, 4], target=5, sigma=0.9)

    def test_reduction_sigma_threshold(self):
        sigma = reduction_sigma([3, 4], target=5)
        assert 0 < sigma < 2 - 7 / 5


class TestReductionCorrectness:
    def test_yes_instance_reaches_sigma(self):
        # {3, 4, 5} with target 7: subset {3, 4} sums to 7 -> yes.
        instance, sigma = spm_from_subset_sum([3, 4, 5], target=7)
        result = solve_opt_spm(instance)
        assert result.schedule.profit == pytest.approx(sigma, abs=1e-9)
        subset = subset_from_solution(instance, result.schedule, 7)
        values = [3, 4, 5]
        assert sum(values[i] for i in subset) == 7

    def test_no_instance_stays_below_sigma(self):
        # {4, 5} with target 6: no subset sums to 6 (4, 5, 9 all miss).
        instance, sigma = spm_from_subset_sum([4, 5], target=6)
        result = solve_opt_spm(instance)
        assert result.schedule.profit < sigma - 1e-9

    @pytest.mark.parametrize(
        "values,target,expected_yes",
        [
            ([2, 3, 4], 5, True),   # 2+3
            ([2, 3, 4], 6, True),   # 2+4
            ([3, 5, 6], 8, True),   # 3+5
            ([4, 6], 7, False),
            ([5, 6, 7], 10, False),
        ],
    )
    def test_decision_matches_brute_force(self, values, target, expected_yes):
        instance, sigma = spm_from_subset_sum(values, target=target)
        result = solve_opt_spm(instance)
        is_yes = result.schedule.profit >= sigma - 1e-9
        assert is_yes == expected_yes
