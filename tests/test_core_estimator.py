"""Tests for repro.core.estimator — the pessimistic-estimator walk."""

import math

import numpy as np
import pytest

from repro.core.estimator import EstimatorTerm, PessimisticEstimator


def single_term_estimator(log_phi_column, deltas, log_const=0.0):
    """One term, one choice dimension per request (plus decline)."""
    num_requests = len(log_phi_column)
    return PessimisticEstimator(
        num_requests=num_requests,
        num_choices=[2] * num_requests,
        terms=[EstimatorTerm("t", log_const)],
        log_phi=np.array(log_phi_column).reshape(-1, 1),
        choice_deltas=[
            [[(0, deltas[i])], []] for i in range(num_requests)
        ],
    )


class TestInitialValue:
    def test_matches_direct_product(self):
        # U = exp(lc) * phi0 * phi1
        est = single_term_estimator([math.log(0.5), math.log(0.8)], [0.0, 0.0], -1.0)
        expected = math.exp(-1.0) * 0.5 * 0.8
        assert math.exp(est.initial_log_value()) == pytest.approx(expected)

    def test_multiple_terms_sum(self):
        est = PessimisticEstimator(
            num_requests=1,
            num_choices=[2],
            terms=[EstimatorTerm("a", 0.0), EstimatorTerm("b", math.log(2.0))],
            log_phi=np.array([[math.log(0.5), math.log(0.25)]]),
            choice_deltas=[[[(0, 0.0)], []]],
        )
        assert math.exp(est.initial_log_value()) == pytest.approx(0.5 + 2.0 * 0.25)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PessimisticEstimator(
                num_requests=2,
                num_choices=[2, 2],
                terms=[EstimatorTerm("t", 0.0)],
                log_phi=np.zeros((1, 1)),
                choice_deltas=[[[], []], [[], []]],
            )


class TestWalk:
    def test_walk_never_increases_estimator(self):
        """The conditional-expectation property on a random instance."""
        rng = np.random.default_rng(3)
        num_requests, num_terms = 12, 6
        probabilities = rng.uniform(0.05, 0.45, size=num_requests)
        tilts = rng.uniform(0.1, 1.0, size=(num_requests, num_terms))
        # phi = expectation of the realized factors: p e^t + (1-p).
        log_phi = np.log(
            probabilities[:, None] * np.exp(tilts) + (1 - probabilities[:, None])
        )
        deltas = [
            [
                [(k, float(tilts[i, k])) for k in range(num_terms)],  # accept
                [],  # decline
            ]
            for i in range(num_requests)
        ]
        est = PessimisticEstimator(
            num_requests=num_requests,
            num_choices=[2] * num_requests,
            terms=[EstimatorTerm(f"t{k}", -1.0) for k in range(num_terms)],
            log_phi=log_phi,
            choice_deltas=deltas,
        )
        initial = est.initial_log_value()
        choices, final = est.walk()
        assert final <= initial + 1e-9
        assert len(choices) == num_requests
        # With positive tilts everywhere, declining dominates every term.
        assert all(c == 1 for c in choices)

    def test_walk_picks_minimizing_branch(self):
        # Term punishes acceptance (positive tilt), so decline must win.
        est = single_term_estimator([math.log(1.2)], [0.5])
        choices, _ = est.walk()
        assert choices == [1]

    def test_walk_accepts_when_beneficial(self):
        # Negative tilt: accepting shrinks the term.
        est = single_term_estimator([math.log(0.9)], [-0.5])
        choices, _ = est.walk()
        assert choices == [0]

    def test_leaf_value_is_realized_estimator(self):
        est = single_term_estimator(
            [math.log(0.7), math.log(0.6)], [-0.3, -0.2], log_const=0.1
        )
        choices, final = est.walk()
        # Both accepted: U = exp(0.1 - 0.3 - 0.2).
        assert choices == [0, 0]
        assert final == pytest.approx(0.1 - 0.3 - 0.2)

    def test_empty_walk(self):
        est = PessimisticEstimator(
            num_requests=0,
            num_choices=[],
            terms=[EstimatorTerm("t", -2.0)],
            log_phi=np.zeros((0, 1)),
            choice_deltas=[],
        )
        choices, final = est.walk()
        assert choices == []
        assert final == pytest.approx(-2.0)
