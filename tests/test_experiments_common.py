"""Tests for repro.experiments.common."""

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    make_instance,
    make_topology,
)


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.topology == "b4"
        assert cfg.num_slots == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="b5")
        with pytest.raises(ValueError):
            ExperimentConfig(request_counts=())
        with pytest.raises(ValueError):
            ExperimentConfig(request_counts=(0,))


class TestMakeInstance:
    def test_topologies(self):
        assert make_topology("b4").num_datacenters == 12
        assert make_topology("sub-b4").num_datacenters == 6
        with pytest.raises(ValueError):
            make_topology("nope")

    def test_instance_size(self):
        cfg = ExperimentConfig(topology="sub-b4", request_counts=(10,))
        inst = make_instance(cfg, 10)
        assert inst.num_requests == 10
        assert inst.num_slots == 12

    def test_deterministic_per_seed(self):
        cfg = ExperimentConfig(topology="sub-b4", seed=5)
        a = make_instance(cfg, 8)
        b = make_instance(cfg, 8)
        for ra, rb in zip(a.requests, b.requests):
            assert ra.rate == rb.rate and ra.value == rb.value

    def test_sweep_points_draw_independent_workloads(self):
        cfg = ExperimentConfig(topology="sub-b4", seed=5)
        a = make_instance(cfg, 8)
        b = make_instance(cfg, 9)
        assert any(
            ra.rate != rb.rate for ra, rb in zip(a.requests, b.requests)
        )


class TestExperimentResult:
    def make_result(self):
        return ExperimentResult(
            experiment="demo",
            description="a demo",
            headers=["k", "solution", "profit"],
            rows=[[10, "a", 1.0], [10, "b", 2.0], [20, "a", 3.0]],
        )

    def test_to_table_contains_values(self):
        text = self.make_result().to_table()
        assert "demo" in text and "profit" in text and "2.000" in text

    def test_column(self):
        assert self.make_result().column("profit") == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            self.make_result().column("missing")

    def test_filtered(self):
        rows = self.make_result().filtered(k=10, solution="b")
        assert rows == [[10, "b", 2.0]]

    def test_notes_rendered(self):
        result = self.make_result()
        result.notes.append("timed out")
        assert "note: timed out" in result.to_table()
