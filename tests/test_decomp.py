"""The decomposition package: partitioning, ledger, solver, oracle gap."""

from __future__ import annotations

import numpy as np
import pytest

from repro import b4, sub_b4
from repro.core.instance import SPMInstance
from repro.decomp import (
    BandwidthLedger,
    ConstantStep,
    DecompConfig,
    GeometricStep,
    HarmonicStep,
    make_step_schedule,
    oracle_gap,
    partition_requests,
    profit_gap_bound,
    shard_of_source,
    solve_decomposed,
    solve_exact,
    source_shard_map,
)
from repro.net.topology import Topology
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.request import Request, RequestSet

_TOL = 1e-9


def _instance(num_requests=24, *, topology=None, seed=3, num_slots=6):
    topology = topology if topology is not None else b4()
    requests = generate_workload(
        topology,
        WorkloadConfig(num_requests=num_requests, num_slots=num_slots),
        rng=seed,
    )
    return SPMInstance.build(topology, requests, k_paths=3)


def _two_island_topology() -> Topology:
    """Two edge-disjoint regions: sharding by region loses nothing."""
    topo = Topology("islands", regions={})
    for node, region in (
        ("A1", "east"), ("A2", "east"), ("A3", "east"),
        ("B1", "west"), ("B2", "west"), ("B3", "west"),
    ):
        topo.add_datacenter(node, region=region)
    topo.add_link("A1", "A2", 1.0)
    topo.add_link("A2", "A3", 2.0)
    topo.add_link("A1", "A3", 4.0)
    topo.add_link("B1", "B2", 1.5)
    topo.add_link("B2", "B3", 2.5)
    topo.add_link("B1", "B3", 5.0)
    return topo


def _island_requests(num_slots=4) -> RequestSet:
    reqs = []
    rid = 0
    for src, dst in (("A1", "A3"), ("A2", "A3"), ("A1", "A2")):
        for k in range(3):
            reqs.append(
                Request(rid, src, dst, 0, num_slots - 1, 1.0, 30.0 + rid)
            )
            rid += 1
    for src, dst in (("B1", "B3"), ("B2", "B3"), ("B1", "B2")):
        for k in range(3):
            reqs.append(
                Request(rid, src, dst, 0, num_slots - 1, 1.0, 25.0 + rid)
            )
            rid += 1
    return RequestSet(reqs, num_slots)


class TestPartition:
    def test_hash_partition_is_stable_and_total(self):
        topo = b4()
        requests = list(_instance(30).requests)
        shards = partition_requests(topo, requests, 4, "hash")
        assert len(shards) == 4
        flat = sorted(rid for shard in shards for rid in shard)
        assert flat == sorted(req.request_id for req in requests)
        # Same request -> same shard, run after run.
        again = partition_requests(topo, requests, 4, "hash")
        assert shards == again
        for req in requests:
            expected = shard_of_source(req.source, 4)
            assert req.request_id in shards[expected]

    def test_region_partition_keeps_regions_together(self):
        topo = _two_island_topology()
        requests = list(_island_requests())
        shards = partition_requests(topo, requests, 2, "region")
        assert len(shards) == 2
        by_id = {req.request_id: req for req in requests}
        for shard in shards:
            regions = {topo.region(by_id[rid].source) for rid in shard}
            assert len(regions) == 1

    def test_region_map_is_batch_independent(self):
        # The live gateway shards window-sized batches; any subset of
        # sources must map exactly like the full set.
        topo = _two_island_topology()
        full = source_shard_map(topo, topo.datacenters, 2, "region")
        for subset in (["A1"], ["B2", "A3"], ["B1", "B3"]):
            partial = source_shard_map(topo, subset, 2, "region")
            for source in subset:
                assert partial[source] == full[source]

    def test_single_shard_takes_everything(self):
        topo = b4()
        requests = list(_instance(8).requests)
        [only] = partition_requests(topo, requests, 1, "hash")
        assert sorted(only) == sorted(req.request_id for req in requests)

    def test_validation(self):
        topo = b4()
        with pytest.raises(ValueError, match="num_shards"):
            partition_requests(topo, [], 0, "hash")
        with pytest.raises(ValueError, match="mode"):
            partition_requests(topo, [], 2, "round-robin")
        with pytest.raises(ValueError, match="num_shards"):
            shard_of_source("DC1", 0)


class TestStepSchedules:
    def test_schedule_values(self):
        assert ConstantStep(0.5).step(0) == 0.5
        assert ConstantStep(0.5).step(9) == 0.5
        assert HarmonicStep(1.0).step(0) == 1.0
        assert HarmonicStep(1.0).step(3) == pytest.approx(0.25)
        assert GeometricStep(2.0, decay=0.5).step(0) == 2.0
        assert GeometricStep(2.0, decay=0.5).step(2) == pytest.approx(0.5)

    def test_factory(self):
        assert isinstance(make_step_schedule("constant", 1.0), ConstantStep)
        assert isinstance(make_step_schedule("harmonic", 1.0), HarmonicStep)
        geometric = make_step_schedule("geometric", 1.0, decay=0.25)
        assert isinstance(geometric, GeometricStep)
        assert geometric.step(1) == pytest.approx(0.25)
        with pytest.raises(ValueError, match="step"):
            make_step_schedule("newton", 1.0)


class TestBandwidthLedger:
    def _capped_ledger(self, cap=2.0):
        edges = [("X", "Y"), ("Y", "Z")]
        prices = np.array([1.0, 3.0])
        capacities = np.array([cap, np.inf])
        return BandwidthLedger(
            edges, prices, capacities, 4, schedule=ConstantStep(0.5)
        )

    def test_uncapped_ledger_short_circuits(self):
        edges = [("X", "Y")]
        ledger = BandwidthLedger(
            edges, np.array([1.0]), np.array([np.inf]), 4
        )
        assert not ledger.capped
        assert float(ledger.violation().max(initial=0.0)) == 0.0

    def test_post_violation_update_cycle(self):
        ledger = self._capped_ledger(cap=2.0)
        assert ledger.capped
        loads = np.zeros((2, 4))
        loads[0, 1] = 5.0  # peak 5 on a cap-2 edge -> violation 3
        loads[1, 0] = 100.0  # uncapped edge never violates
        ledger.begin_round()
        ledger.post(0, loads)
        violation = ledger.violation()
        assert violation[0] == pytest.approx(3.0)
        assert violation[1] == 0.0
        worst = ledger.update_prices()
        assert worst == pytest.approx(3.0)
        assert ledger.duals[0] == pytest.approx(1.5)  # 0.5 * 3
        assert ledger.duals[1] == 0.0
        assert ledger.effective_prices()[0] == pytest.approx(2.5)
        # A feasible round pulls the dual back down (projected at 0).
        ledger.begin_round()
        ledger.post(0, np.zeros((2, 4)))
        ledger.update_prices()
        assert ledger.duals[0] == pytest.approx(0.5)  # 1.5 + 0.5 * (-2)

    def test_duals_never_negative(self):
        ledger = self._capped_ledger()
        for _ in range(6):
            ledger.begin_round()
            ledger.post(0, np.zeros((2, 4)))
            ledger.update_prices()
        assert (ledger.duals >= 0.0).all()

    def test_record_round_trip_is_bit_identical(self):
        ledger = self._capped_ledger()
        loads = np.zeros((2, 4))
        loads[0, 0] = 7.0
        ledger.begin_round()
        ledger.post(0, loads)
        ledger.update_prices()
        ledger.record_evictions(3)
        record = ledger.to_record()

        clone = self._capped_ledger()
        clone.apply_record(record)
        assert np.array_equal(clone.duals, ledger.duals)
        assert clone.price_iterations == ledger.price_iterations
        assert clone.evictions == ledger.evictions
        assert clone.counters() == ledger.counters()


class TestSolveDecomposed:
    def test_matches_exact_on_edge_disjoint_regions(self):
        # Region shards never share a link, so price coordination has
        # nothing to reconcile and the decomposition is exactly optimal.
        topo = _two_island_topology()
        instance = SPMInstance.build(topo, _island_requests(), k_paths=2)
        exact = solve_exact(instance)
        outcome = solve_decomposed(
            instance, DecompConfig(num_shards=2, mode="region")
        )
        assert outcome.profit == pytest.approx(exact.profit)
        assert outcome.schedule.assignment == exact.assignment
        assert outcome.evicted == ()

    def test_profit_gap_bound_on_full_span_requests(self):
        # All-full-span requests peak in a common slot, the precondition
        # of the (S-1) * sum(u_e) additive bound.
        topo = sub_b4()
        rng = np.random.default_rng(11)
        reqs = [
            Request(
                rid,
                *rng.choice(["DC1", "DC2", "DC3", "DC4"], 2, replace=False),
                0,
                3,
                float(rng.uniform(0.05, 0.4)),
                float(rng.uniform(5.0, 40.0)),
            )
            for rid in range(20)
        ]
        instance = SPMInstance.build(topo, RequestSet(reqs, 4), k_paths=3)
        for shards in (2, 3):
            gap = oracle_gap(instance, DecompConfig(num_shards=shards))
            assert gap["bound"] == pytest.approx(
                profit_gap_bound(instance, shards)
            )
            assert gap["gap"] >= -1e-9
            assert gap["within_bound"]

    def test_capped_output_is_always_slot_feasible(self):
        topo = b4()
        topo.set_uniform_capacity(1)
        instance = _instance(40, topology=topo, seed=13)
        outcome = solve_decomposed(
            instance, DecompConfig(num_shards=3, max_rounds=3)
        )
        loads = instance.loads(outcome.schedule.assignment)
        assert float(loads.max(initial=0.0)) <= 1.0 + _TOL
        # The caps bind under this workload: the ledger actually iterated
        # or the reconciliation pass actually evicted.
        assert outcome.rounds >= 1
        for rid in outcome.evicted:
            assert outcome.schedule.assignment[rid] is None

    def test_config_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            DecompConfig(num_shards=0)
        with pytest.raises(ValueError, match="mode"):
            DecompConfig(mode="alphabetical")
        with pytest.raises(ValueError, match="max_rounds"):
            DecompConfig(max_rounds=0)


class TestRestrictEdgeCases:
    def test_empty_restriction_solves_trivially(self):
        instance = _instance(6)
        empty = instance.restrict([])
        assert empty.num_requests == 0
        assert empty.prices is instance.prices
        outcome = solve_decomposed(empty, DecompConfig(num_shards=2))
        assert outcome.profit == 0.0
        assert outcome.schedule.assignment == {}

    def test_all_requests_in_one_shard(self):
        # A partition can funnel everything into one shard; the others
        # solve empty instances and the merged result is complete.
        instance = _instance(10, seed=21)
        ids = [req.request_id for req in instance.requests]
        outcome = solve_decomposed(instance, DecompConfig(num_shards=4))
        assert sorted(outcome.schedule.assignment) == sorted(ids)
        exact = solve_exact(instance)
        assert outcome.profit <= exact.profit + 1e-6

    def test_restrict_of_restrict_shares_both_compilers(self):
        instance = _instance(12)
        # Materialize both lazily-built compilers on the root.
        root_form = instance.formulation_compiler()
        root_batch = instance.batch_compiler()
        ids = [req.request_id for req in instance.requests]
        child = instance.restrict(ids[:8])
        grandchild = child.restrict(ids[:3])
        for view in (child, grandchild):
            assert view.formulation_compiler() is root_form
            assert view.batch_compiler() is root_batch
            assert view.prices is instance.prices
            assert view.edge_index is instance.edge_index
        assert [r.request_id for r in grandchild.requests] == ids[:3]
        # The shared compiler still solves the narrowed view correctly.
        schedule = solve_exact(grandchild)
        assert set(schedule.assignment) == set(ids[:3])
