"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_match(self):
        check_type("x", 3, int)
        check_type("x", "s", str)
        check_type("x", 3.0, (int, float))

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)

    def test_rejects_bool_for_numeric(self):
        with pytest.raises(TypeError, match="bool"):
            check_type("flagless", True, int)
        with pytest.raises(TypeError, match="bool"):
            check_type("flagless", False, (int, float))

    def test_bool_allowed_when_bool_expected(self):
        check_type("flag", True, bool)


class TestNumericChecks:
    def test_finite_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_finite("x", float("nan"))
        with pytest.raises(ValueError):
            check_finite("x", math.inf)
        check_finite("x", 0.0)

    def test_positive(self):
        check_positive("x", 0.1)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0)

    def test_nonnegative(self):
        check_nonnegative("x", 0.0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.001)

    def test_in_range_inclusive(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 1.01, 0.0, 1.0)

    def test_in_range_exclusive(self):
        check_in_range("x", 0.5, 0.0, 1.0, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)
