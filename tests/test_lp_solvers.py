"""Tests for repro.lp.solvers — LP and MILP solves on known problems."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.lp.model import Model
from repro.lp.result import RawSolution, SolveStatus


class TestLinearPrograms:
    def test_simple_maximization(self):
        # max x + y  s.t. x + 2y <= 4, x <= 3  ->  x=3, y=0.5
        m = Model()
        x = m.add_var("x", 0, 3)
        y = m.add_var("y")
        m.add_constr(x + 2 * y <= 4)
        m.set_objective(x + y, maximize=True)
        sol = m.solve()
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.5)
        assert sol[x] == pytest.approx(3.0)
        assert sol[y] == pytest.approx(0.5)

    def test_simple_minimization(self):
        # min 2x + y  s.t. x + y >= 3, x >= 1  ->  x=1, y=2
        m = Model()
        x = m.add_var("x", 1)
        y = m.add_var("y")
        m.add_constr(x + y >= 3)
        m.set_objective(2 * x + y, maximize=False)
        sol = m.solve()
        assert sol.objective == pytest.approx(4.0)

    def test_equality_constraint(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(x + y == 5)
        m.set_objective(x - y, maximize=True)
        sol = m.solve()
        assert sol.objective == pytest.approx(5.0)
        assert sol[x] == pytest.approx(5.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", 0, 1)
        m.add_constr(x >= 2)
        m.set_objective(x + 0, maximize=True)
        assert m.solve().status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(x >= 0)
        m.set_objective(x + 0, maximize=True)
        assert m.solve().status is SolveStatus.UNBOUNDED

    def test_objective_constant_included(self):
        m = Model()
        x = m.add_var("x", 0, 1)
        m.set_objective(x + 10, maximize=True)
        assert m.solve().objective == pytest.approx(11.0)

    def test_value_of_expression(self):
        m = Model()
        x = m.add_var("x", 0, 2)
        y = m.add_var("y", 0, 2)
        m.set_objective(x + y, maximize=True)
        sol = m.solve()
        assert sol.value_of(x + 2 * y) == pytest.approx(6.0)
        assert sol.value_of(x) == pytest.approx(2.0)


class TestMixedIntegerPrograms:
    def test_knapsack(self):
        values = [10, 7, 4, 3]
        weights = [5, 4, 3, 2]
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(4)]
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 7)
        m.set_objective(sum(v * x for v, x in zip(values, xs)), maximize=True)
        sol = m.solve()
        assert sol.objective == pytest.approx(13.0)
        assert [sol[x] for x in xs] == [1, 0, 0, 1]

    def test_integer_values_are_exact_ints(self):
        m = Model()
        x = m.add_var("x", 0, 10, is_integer=True)
        m.add_constr(2 * x <= 7)
        m.set_objective(x + 0, maximize=True)
        sol = m.solve()
        assert sol[x] == 3
        assert float(sol[x]).is_integer()

    def test_relaxation_differs_from_milp(self):
        m = Model()
        x = m.add_var("x", 0, 10, is_integer=True)
        m.add_constr(2 * x <= 7)
        m.set_objective(x + 0, maximize=True)
        assert m.solve(relax_integrality=True).objective == pytest.approx(3.5)
        assert m.solve().objective == pytest.approx(3.0)

    def test_milp_infeasible(self):
        m = Model()
        x = m.add_var("x", 0, 1, is_integer=True)
        m.add_constr(2 * x == 1)  # x would need to be 0.5
        m.set_objective(x + 0, maximize=True)
        assert m.solve().status is SolveStatus.INFEASIBLE

    def test_mixed_continuous_integer(self):
        # max 2i + c  s.t. i + c <= 2.5, c <= 1  ->  i=2 (int), c=0.5
        m = Model()
        i = m.add_var("i", 0, 5, is_integer=True)
        c = m.add_var("c", 0, 1)
        m.add_constr(i + c <= 2.5)
        m.set_objective(2 * i + c, maximize=True)
        sol = m.solve()
        assert sol[i] == 2
        assert sol[c] == pytest.approx(0.5)
        assert sol.objective == pytest.approx(4.5)

    def test_time_limit_accepted(self):
        m = Model()
        x = m.add_var("x", 0, 10, is_integer=True)
        m.add_constr(x <= 5)
        m.set_objective(x + 0, maximize=True)
        sol = m.solve(time_limit=10.0)
        assert sol.objective == pytest.approx(5.0)

    def test_time_limit_accepted_on_lp_path(self):
        m = Model()
        x = m.add_var("x", 0, 10)
        m.add_constr(x <= 5)
        m.set_objective(x + 0, maximize=True)
        sol = m.solve(time_limit=10.0)
        assert sol.objective == pytest.approx(5.0)

    def test_check_cancelled_aborts_before_dispatch(self):
        from repro.exceptions import SolverError

        m = Model()
        x = m.add_var("x", 0, 10)
        m.set_objective(x + 0, maximize=True)
        with pytest.raises(SolverError, match="cancelled"):
            m.solve(check_cancelled=lambda: True)

    def test_check_cancelled_false_is_noop(self):
        m = Model()
        x = m.add_var("x", 0, 5)
        m.set_objective(x + 0, maximize=True)
        sol = m.solve(check_cancelled=lambda: False)
        assert sol.objective == pytest.approx(5.0)


def _bounded_milp():
    m = Model()
    x = m.add_var("x", 0, 10, is_integer=True)
    m.add_constr(x <= 5)
    m.set_objective(x + 0, maximize=True)
    return m, x


class TestLimitStatuses:
    """scipy's limit code (1) maps to FEASIBLE-with-incumbent or TIME_LIMIT.

    The scipy result is faked at the backend boundary so the mapping is
    deterministic — real limit hits on problems this small are not.
    """

    def test_limit_with_incumbent_is_feasible(self, monkeypatch):
        monkeypatch.setattr(
            "repro.lp.solvers.optimize.milp",
            lambda *a, **k: SimpleNamespace(
                status=1, x=np.array([4.0]), fun=-4.0
            ),
        )
        m, x = _bounded_milp()
        sol = m.solve(time_limit=1.0)
        assert sol.status is SolveStatus.FEASIBLE
        assert sol.is_feasible and not sol.is_optimal
        assert sol.objective == pytest.approx(4.0)
        assert sol[x] == 4  # the incumbent is kept, not discarded

    def test_limit_without_incumbent_is_time_limit(self, monkeypatch):
        monkeypatch.setattr(
            "repro.lp.solvers.optimize.milp",
            lambda *a, **k: SimpleNamespace(status=1, x=None, fun=None),
        )
        m, _ = _bounded_milp()
        sol = m.solve(time_limit=1.0)
        assert sol.status is SolveStatus.TIME_LIMIT
        assert not sol.is_feasible
        assert math.isnan(sol.objective)
        assert sol.values == {}

    def test_lp_limit_without_incumbent_is_time_limit(self, monkeypatch):
        monkeypatch.setattr(
            "repro.lp.solvers.optimize.linprog",
            lambda *a, **k: SimpleNamespace(status=1, x=None, fun=None),
        )
        m = Model()
        x = m.add_var("x", 0, 5)
        m.set_objective(x + 0, maximize=True)
        sol = m.solve(time_limit=1.0)
        assert sol.status is SolveStatus.TIME_LIMIT

    def test_real_tiny_limit_never_raises(self):
        # Whatever HiGHS manages within ~0 seconds, the statuses stay in
        # the OPTIMAL/FEASIBLE/TIME_LIMIT triple — never an exception.
        m, _ = _bounded_milp()
        sol = m.solve(time_limit=1e-9)
        assert sol.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.TIME_LIMIT,
        )

    def test_raw_solution_flags(self):
        feas = RawSolution(
            status=SolveStatus.FEASIBLE, objective=1.0, x=np.ones(1)
        )
        limit = RawSolution(
            status=SolveStatus.TIME_LIMIT, objective=float("nan")
        )
        assert feas.is_feasible and not feas.is_optimal
        assert not limit.is_feasible and limit.x is None
