"""Hypothesis fuzzing of the persistence layers and malformed-input paths."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.net.serialization import topology_from_dict, topology_to_dict
from repro.net.topologies import random_wan
from repro.workload.request import Request, RequestSet
from repro.workload.traces import requests_from_dicts, requests_to_dicts


@st.composite
def random_request_set(draw):
    num_slots = draw(st.integers(min_value=1, max_value=12))
    n = draw(st.integers(min_value=0, max_value=12))
    requests = []
    for i in range(n):
        start = draw(st.integers(min_value=0, max_value=num_slots - 1))
        end = draw(st.integers(min_value=start, max_value=num_slots - 1))
        requests.append(
            Request(
                request_id=i,
                source=f"DC{draw(st.integers(min_value=1, max_value=5))}",
                dest=f"X{draw(st.integers(min_value=1, max_value=5))}",
                start=start,
                end=end,
                rate=draw(
                    st.floats(
                        min_value=1e-3, max_value=10, allow_nan=False
                    )
                ),
                value=draw(
                    st.floats(min_value=0, max_value=100, allow_nan=False)
                ),
            )
        )
    return RequestSet(requests, num_slots)


class TestTraceFuzz:
    @given(random_request_set())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_everything(self, request_set):
        payload = json.loads(json.dumps(requests_to_dicts(request_set)))
        restored = requests_from_dicts(payload)
        assert restored.num_slots == request_set.num_slots
        assert len(restored) == len(request_set)
        for a, b in zip(request_set, restored):
            assert a.request_id == b.request_id
            assert (a.start, a.end) == (b.start, b.end)
            assert a.rate == pytest.approx(b.rate)
            assert a.value == pytest.approx(b.value)

    @given(random_request_set())
    @settings(max_examples=20, deadline=None)
    def test_total_value_invariant(self, request_set):
        restored = requests_from_dicts(requests_to_dicts(request_set))
        assert restored.total_value == pytest.approx(request_set.total_value)

    def test_corrupted_fields_rejected(self):
        request_set = RequestSet(
            [
                Request(
                    request_id=0,
                    source="A",
                    dest="B",
                    start=0,
                    end=0,
                    rate=0.5,
                    value=1.0,
                )
            ],
            num_slots=1,
        )
        payload = requests_to_dicts(request_set)
        corrupted = json.loads(json.dumps(payload))
        corrupted["requests"][0]["rate"] = -1.0
        with pytest.raises(WorkloadError):
            requests_from_dicts(corrupted)
        corrupted = json.loads(json.dumps(payload))
        corrupted["requests"][0]["end"] = 99
        with pytest.raises(WorkloadError):
            requests_from_dicts(corrupted)


class TestTopologyFuzz:
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_wan_round_trip(self, n, extra, seed):
        max_extra = n * (n - 1) // 2 - n
        topo = random_wan(n, min(extra, max_extra), rng=seed)
        payload = json.loads(json.dumps(topology_to_dict(topo)))
        restored = topology_from_dict(payload)
        assert restored.num_datacenters == topo.num_datacenters
        assert restored.num_edges == topo.num_edges
        for edge in topo.edges:
            assert restored.price(str(edge.tail), str(edge.head)) == pytest.approx(
                edge.weight
            )
        restored.validate()
