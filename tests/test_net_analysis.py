"""Tests for repro.net.analysis."""

import pytest

from repro.net.analysis import (
    cheapest_path_betweenness,
    path_diversity,
    topology_summary,
)
from repro.net.topologies import abilene, b4, line_topology, sub_b4


class TestBetweenness:
    def test_line_middle_edge_dominates(self):
        topo = line_topology(4)
        counts = cheapest_path_betweenness(topo)
        # DC2-DC3 carries DC1/DC2 x DC3/DC4 traffic in each direction.
        assert counts[("DC2", "DC3")] == 4
        assert counts[("DC1", "DC2")] == 3

    def test_total_equals_total_hops(self):
        topo = sub_b4()
        counts = cheapest_path_betweenness(topo)
        assert sum(counts.values()) > 0
        assert all(v >= 0 for v in counts.values())

    def test_every_edge_key_present(self):
        topo = b4()
        counts = cheapest_path_betweenness(topo)
        assert set(counts) == {e.key for e in topo.edges}


class TestPathDiversity:
    def test_line_has_single_path(self):
        topo = line_topology(3)
        assert path_diversity(topo, "DC1", "DC3") == 1

    def test_diamond_has_two(self, diamond):
        assert path_diversity(diamond, "A", "D") == 2

    def test_all_b4_pairs_connected(self):
        topo = b4()
        for source in topo.datacenters:
            for dest in topo.datacenters:
                if source != dest:
                    assert path_diversity(topo, source, dest) >= 1


class TestTopologySummary:
    def test_b4_summary(self):
        summary = topology_summary(b4())
        assert summary.num_datacenters == 12
        assert summary.num_links == 19
        assert summary.price_min == 1.0
        assert summary.price_max == pytest.approx(6.5)
        assert summary.price_spread == pytest.approx(6.5)
        assert summary.hop_diameter >= 3

    def test_abilene_uniform_prices(self):
        summary = topology_summary(abilene())
        assert summary.price_spread == pytest.approx(1.0)
        assert summary.num_links == 14

    def test_line_diversity_floor(self):
        summary = topology_summary(line_topology(3))
        assert summary.min_pair_diversity == 1
        assert summary.hop_diameter == 2
