"""Tests for repro.net.paths — including a networkx oracle cross-check."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NoPathError
from repro.net.graph import DiGraph
from repro.net.paths import Path, dijkstra, k_shortest_paths, shortest_path


def build_graph(edges):
    g = DiGraph()
    for tail, head, weight in edges:
        g.add_edge(tail, head, weight)
    return g


class TestPath:
    def test_properties(self):
        p = Path(("a", "b", "c"), 2.0)
        assert p.source == "a"
        assert p.target == "c"
        assert p.edges == (("a", "b"), ("b", "c"))
        assert len(p) == 2

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Path(("a",), 0.0)

    def test_revisit_rejected(self):
        with pytest.raises(ValueError, match="revisits"):
            Path(("a", "b", "a"), 1.0)

    def test_equality_ignores_cost(self):
        assert Path(("a", "b"), 1.0) == Path(("a", "b"), 9.0)
        assert hash(Path(("a", "b"), 1.0)) == hash(Path(("a", "b"), 9.0))


class TestDijkstra:
    def test_simple(self):
        g = build_graph([("a", "b", 1), ("b", "c", 1), ("a", "c", 5)])
        dist, _ = dijkstra(g, "a")
        assert dist["c"] == 2

    def test_unreachable_missing_from_dist(self):
        g = build_graph([("a", "b", 1)])
        g.add_node("z")
        dist, _ = dijkstra(g, "a")
        assert "z" not in dist

    def test_shortest_path_reconstruction(self):
        g = build_graph([("a", "b", 1), ("b", "c", 1), ("a", "c", 5)])
        p = shortest_path(g, "a", "c")
        assert p.nodes == ("a", "b", "c")
        assert p.cost == 2

    def test_no_path_raises(self):
        g = build_graph([("a", "b", 1)])
        g.add_node("z")
        with pytest.raises(NoPathError):
            shortest_path(g, "a", "z")

    def test_zero_weight_edges(self):
        g = build_graph([("a", "b", 0), ("b", "c", 0)])
        assert shortest_path(g, "a", "c").cost == 0


class TestKShortestPaths:
    def test_diamond_ordering(self):
        g = build_graph(
            [("s", "u", 1), ("u", "t", 1), ("s", "v", 2), ("v", "t", 2)]
        )
        paths = k_shortest_paths(g, "s", "t", 2)
        assert [p.nodes for p in paths] == [("s", "u", "t"), ("s", "v", "t")]
        assert [p.cost for p in paths] == [2, 4]

    def test_k_larger_than_path_count(self):
        g = build_graph([("s", "t", 1)])
        assert len(k_shortest_paths(g, "s", "t", 10)) == 1

    def test_paths_are_simple_and_unique(self):
        g = build_graph(
            [
                ("s", "a", 1),
                ("a", "t", 1),
                ("s", "b", 1),
                ("b", "t", 1),
                ("a", "b", 0.5),
                ("b", "a", 0.5),
            ]
        )
        paths = k_shortest_paths(g, "s", "t", 10)
        assert len({p.nodes for p in paths}) == len(paths)
        for p in paths:
            assert len(set(p.nodes)) == len(p.nodes)

    def test_invalid_k(self):
        g = build_graph([("s", "t", 1)])
        with pytest.raises(ValueError):
            k_shortest_paths(g, "s", "t", 0)

    def test_no_path(self):
        g = build_graph([("a", "b", 1)])
        g.add_node("z")
        with pytest.raises(NoPathError):
            k_shortest_paths(g, "a", "z", 3)


@st.composite
def random_digraph(draw):
    """A random weighted digraph over 4-8 nodes with a guaranteed ring."""
    n = draw(st.integers(min_value=4, max_value=8))
    nodes = list(range(n))
    edges = {}
    for a, b in zip(nodes, nodes[1:] + nodes[:1]):  # ring for connectivity
        edges[(a, b)] = draw(
            st.floats(min_value=0.1, max_value=10, allow_nan=False)
        )
    extra = draw(st.integers(min_value=0, max_value=n * 2))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b and (a, b) not in edges:
            edges[(a, b)] = draw(
                st.floats(min_value=0.1, max_value=10, allow_nan=False)
            )
    return [(a, b, w) for (a, b), w in edges.items()]


class TestAgainstNetworkx:
    @given(random_digraph())
    @settings(max_examples=40, deadline=None)
    def test_shortest_path_cost_matches_networkx(self, edge_list):
        ours = build_graph(edge_list)
        theirs = nx.DiGraph()
        theirs.add_weighted_edges_from(edge_list)
        cost = shortest_path(ours, 0, 1).cost
        expected = nx.shortest_path_length(theirs, 0, 1, weight="weight")
        assert cost == pytest.approx(expected)

    @given(random_digraph(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_k_shortest_matches_networkx(self, edge_list, k):
        ours = build_graph(edge_list)
        theirs = nx.DiGraph()
        theirs.add_weighted_edges_from(edge_list)
        mine = k_shortest_paths(ours, 0, 1, k)

        def nx_cost(path):
            return sum(
                theirs[a][b]["weight"] for a, b in zip(path[:-1], path[1:])
            )

        expected = []
        for path in nx.shortest_simple_paths(theirs, 0, 1, weight="weight"):
            expected.append(nx_cost(path))
            if len(expected) == k:
                break
        assert len(mine) == len(expected)
        # Cost sequences must match even if equal-cost paths tie-break
        # differently.
        for got, want in zip(mine, expected):
            assert got.cost == pytest.approx(want)
