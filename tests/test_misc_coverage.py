"""Coverage for the remaining branches: exception hierarchy, CLI ablation
and chart paths, Metis feature flags, TAA's mu fallback."""

import pytest

from repro import exceptions as exc
from repro.core.instance import SPMInstance
from repro.core.metis import Metis
from repro.core.taa import solve_taa
from repro.experiments.cli import main
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exc.__all__:
            klass = getattr(exc, name)
            assert issubclass(klass, exc.ReproError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(exc.InfeasibleError, exc.SolverError)
        assert issubclass(exc.UnboundedError, exc.SolverError)

    def test_not_found_errors_are_key_errors(self):
        assert issubclass(exc.NodeNotFoundError, KeyError)
        assert issubclass(exc.EdgeNotFoundError, KeyError)

    def test_capacity_violation_is_schedule_error(self):
        assert issubclass(exc.CapacityViolationError, exc.ScheduleError)


class TestCliExtras:
    def test_ablation_subcommand(self, capsys):
        code = main(["ablation-k-paths"])
        assert code == 0
        assert "k_paths" in capsys.readouterr().out

    def test_chart_flag(self, capsys):
        code = main(
            ["fig3", "--requests", "10", "20", "--theta", "2", "--no-opt", "--chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(chart)" in out
        assert "o=Metis" in out


class TestMetisFlags:
    def test_prune_disabled(self, small_sub_b4_instance):
        outcome = Metis(theta=2, maa_rounds=1, prune=False).solve(
            small_sub_b4_instance, rng=0
        )
        assert outcome.best.profit >= 0.0
        assert "prune" not in outcome.best.source

    def test_local_search_disabled_never_cheaper(self, small_sub_b4_instance):
        plain = Metis(theta=1, maa_rounds=1, local_search=False, prune=False)
        polished = Metis(theta=1, maa_rounds=1, local_search=True, prune=False)
        plain_out = plain.solve(small_sub_b4_instance, rng=3)
        polished_out = polished.solve(small_sub_b4_instance, rng=3)
        assert polished_out.best.profit >= plain_out.best.profit - 1e-9


class TestTaaMuFallback:
    def test_tiny_capacity_uses_fallback_mu(self, diamond):
        # A single unit of capacity with max rate 1.0 -> normalized min
        # capacity 1.0, for which inequality (6) admits no mu on this
        # (T, N): solve_taa must fall back, not crash.
        requests = RequestSet(
            [make_request(i, rate=1.0, value=1.0, start=0, end=0) for i in range(2)],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        caps = {key: 1 for key in inst.edges}
        result = solve_taa(inst, caps, fallback_mu=0.4)
        result.schedule.check_capacities(caps)
        assert result.mu == pytest.approx(0.4) or 0 < result.mu < 1
