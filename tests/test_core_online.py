"""Tests for repro.core.online — the slot-by-slot online extension."""

import numpy as np
import pytest

from repro.baselines.opt import solve_opt_spm
from repro.core.instance import SPMInstance
from repro.core.online import OnlineScheduler, build_incremental_spm
from repro.sim.validator import validate_schedule
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestIncrementalModel:
    def test_free_ride_on_paid_unit(self, diamond):
        # One unit already charged on the cheap path; a small batch request
        # fits for free and must be accepted even with a tiny bid.
        requests = RequestSet(
            [make_request(0, rate=0.3, value=0.05)], num_slots=1
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        committed = np.zeros((inst.num_edges, 1))
        committed[inst.edge_index[("A", "B")], 0] = 0.5
        committed[inst.edge_index[("B", "D")], 0] = 0.5
        charged = np.zeros(inst.num_edges)
        charged[inst.edge_index[("A", "B")]] = 1
        charged[inst.edge_index[("B", "D")]] = 1
        model, x_vars, extra_vars = build_incremental_spm(
            inst, [0], committed, charged
        )
        sol = model.solve()
        assert sol.objective == pytest.approx(0.05)
        assert sol.values[x_vars[(0, 0)]] == 1

    def test_declines_when_extra_unit_costs_more(self, diamond):
        # No committed bandwidth: accepting a 0.5-bid request needs fresh
        # units on two price-1 links -> decline (objective 0).
        requests = RequestSet(
            [make_request(0, rate=0.3, value=0.5)], num_slots=1
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        model, x_vars, _ = build_incremental_spm(
            inst,
            [0],
            np.zeros((inst.num_edges, 1)),
            np.zeros(inst.num_edges),
        )
        sol = model.solve()
        assert sol.objective == pytest.approx(0.0)
        assert all(sol.values[v] == 0 for v in x_vars.values())


class TestOnlineScheduler:
    def test_outcome_validates(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        assert validate_schedule(outcome.schedule).ok

    def test_profit_nonnegative(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        assert outcome.profit >= -1e-9, (
            "exact incremental batches never accept a loss-making batch"
        )

    def test_bounded_by_offline_opt(self, small_sub_b4_instance):
        online = OnlineScheduler().run(small_sub_b4_instance)
        offline = solve_opt_spm(small_sub_b4_instance)
        assert online.profit <= offline.profit + 1e-6

    def test_decisions_cover_all_requests(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        decided = set(outcome.schedule.assignment)
        assert decided == set(small_sub_b4_instance.requests.request_ids)
        total_batch = sum(n for _, n, _ in outcome.decisions_per_slot)
        assert total_batch == small_sub_b4_instance.num_requests

    def test_batch_telemetry_consistent(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        accepted_total = sum(a for _, _, a in outcome.decisions_per_slot)
        assert accepted_total == outcome.num_accepted

    def test_empty_instance(self, small_sub_b4_instance):
        empty = small_sub_b4_instance.restrict([])
        outcome = OnlineScheduler().run(empty)
        assert outcome.profit == 0.0
        assert outcome.decisions_per_slot == []

    def test_batch_is_jointly_optimal(self, diamond):
        # Two same-slot requests that are only profitable together: a
        # one-at-a-time greedy (EcoFlow) declines both; the batch MILP
        # accepts both.
        requests = RequestSet(
            [
                make_request(0, rate=0.5, value=1.2),
                make_request(1, rate=0.5, value=1.2),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        outcome = OnlineScheduler().run(inst)
        assert outcome.num_accepted == 2
        assert outcome.profit == pytest.approx(2.4 - 2.0)
