"""Tests for repro.core.online — the slot-by-slot online extension."""

import numpy as np
import pytest

import repro.core.online as online_mod
from repro.baselines.opt import solve_opt_spm
from repro.core.instance import SPMInstance
from repro.core.online import (
    OnlineScheduler,
    build_incremental_spm,
    solve_batch,
)
from repro.exceptions import SolverTimeoutError
from repro.lp.result import RawSolution, SolveStatus
from repro.sim.validator import validate_schedule
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestIncrementalModel:
    def test_free_ride_on_paid_unit(self, diamond):
        # One unit already charged on the cheap path; a small batch request
        # fits for free and must be accepted even with a tiny bid.
        requests = RequestSet(
            [make_request(0, rate=0.3, value=0.05)], num_slots=1
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        committed = np.zeros((inst.num_edges, 1))
        committed[inst.edge_index[("A", "B")], 0] = 0.5
        committed[inst.edge_index[("B", "D")], 0] = 0.5
        charged = np.zeros(inst.num_edges)
        charged[inst.edge_index[("A", "B")]] = 1
        charged[inst.edge_index[("B", "D")]] = 1
        model, x_vars, extra_vars = build_incremental_spm(
            inst, [0], committed, charged
        )
        sol = model.solve()
        assert sol.objective == pytest.approx(0.05)
        assert sol.values[x_vars[(0, 0)]] == 1

    def test_declines_when_extra_unit_costs_more(self, diamond):
        # No committed bandwidth: accepting a 0.5-bid request needs fresh
        # units on two price-1 links -> decline (objective 0).
        requests = RequestSet(
            [make_request(0, rate=0.3, value=0.5)], num_slots=1
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        model, x_vars, _ = build_incremental_spm(
            inst,
            [0],
            np.zeros((inst.num_edges, 1)),
            np.zeros(inst.num_edges),
        )
        sol = model.solve()
        assert sol.objective == pytest.approx(0.0)
        assert all(sol.values[v] == 0 for v in x_vars.values())


class TestOnlineScheduler:
    def test_outcome_validates(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        assert validate_schedule(outcome.schedule).ok

    def test_profit_nonnegative(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        assert outcome.profit >= -1e-9, (
            "exact incremental batches never accept a loss-making batch"
        )

    def test_bounded_by_offline_opt(self, small_sub_b4_instance):
        online = OnlineScheduler().run(small_sub_b4_instance)
        offline = solve_opt_spm(small_sub_b4_instance)
        assert online.profit <= offline.profit + 1e-6

    def test_decisions_cover_all_requests(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        decided = set(outcome.schedule.assignment)
        assert decided == set(small_sub_b4_instance.requests.request_ids)
        total_batch = sum(n for _, n, _ in outcome.decisions_per_slot)
        assert total_batch == small_sub_b4_instance.num_requests

    def test_batch_telemetry_consistent(self, small_sub_b4_instance):
        outcome = OnlineScheduler().run(small_sub_b4_instance)
        accepted_total = sum(a for _, _, a in outcome.decisions_per_slot)
        assert accepted_total == outcome.num_accepted

    def test_empty_instance(self, small_sub_b4_instance):
        empty = small_sub_b4_instance.restrict([])
        outcome = OnlineScheduler().run(empty)
        assert outcome.profit == 0.0
        assert outcome.decisions_per_slot == []

    def test_batch_is_jointly_optimal(self, diamond):
        # Two same-slot requests that are only profitable together: a
        # one-at-a-time greedy (EcoFlow) declines both; the batch MILP
        # accepts both.
        requests = RequestSet(
            [
                make_request(0, rate=0.5, value=1.2),
                make_request(1, rate=0.5, value=1.2),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        outcome = OnlineScheduler().run(inst)
        assert outcome.num_accepted == 2
        assert outcome.profit == pytest.approx(2.4 - 2.0)

    def test_fast_and_expression_paths_agree(self, small_sub_b4_instance):
        fast = OnlineScheduler(fast_path=True).run(small_sub_b4_instance)
        slow = OnlineScheduler(fast_path=False).run(small_sub_b4_instance)
        assert fast.schedule.assignment == slow.schedule.assignment
        assert fast.profit == pytest.approx(slow.profit)


def _one_request_state(diamond):
    requests = RequestSet([make_request(0, rate=0.3, value=5.0)], num_slots=1)
    inst = SPMInstance.build(diamond, requests, k_paths=2)
    return inst, np.zeros((inst.num_edges, 1)), np.zeros(inst.num_edges)


class TestLimitHandling:
    """solve_batch under limit-hit solves: keep incumbents, never guess."""

    def test_timeout_without_incumbent_raises(self, diamond, monkeypatch):
        monkeypatch.setattr(
            online_mod,
            "solve_compiled_raw",
            lambda *a, **k: RawSolution(
                status=SolveStatus.TIME_LIMIT, objective=float("nan")
            ),
        )
        inst, committed, charged = _one_request_state(diamond)
        with pytest.raises(SolverTimeoutError):
            solve_batch(inst, [0], committed, charged, time_limit=1e-9)

    def test_feasible_incumbent_accepted_and_flagged(self, diamond, monkeypatch):
        inst, committed, charged = _one_request_state(diamond)
        optimal = solve_batch(inst, [0], committed, charged)
        assert optimal.status is SolveStatus.OPTIMAL
        assert not optimal.suboptimal

        real = online_mod.solve_compiled_raw

        def relabel(*args, **kwargs):
            raw = real(*args, **kwargs)
            return RawSolution(
                status=SolveStatus.FEASIBLE, objective=raw.objective, x=raw.x
            )

        monkeypatch.setattr(online_mod, "solve_compiled_raw", relabel)
        decision = solve_batch(inst, [0], committed, charged)
        assert decision.status is SolveStatus.FEASIBLE
        assert decision.suboptimal
        assert decision.choices == optimal.choices

    def test_feasible_rejected_when_strict(self, diamond, monkeypatch):
        inst, committed, charged = _one_request_state(diamond)
        real = online_mod.solve_compiled_raw
        monkeypatch.setattr(
            online_mod,
            "solve_compiled_raw",
            lambda *a, **k: RawSolution(
                status=SolveStatus.FEASIBLE,
                objective=real(*a, **k).objective,
                x=real(*a, **k).x,
            ),
        )
        with pytest.raises(SolverTimeoutError, match="accept_feasible=False"):
            solve_batch(
                inst, [0], committed, charged, accept_feasible=False
            )
