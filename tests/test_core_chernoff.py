"""Tests for repro.core.chernoff — bounds, inversions and mu selection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chernoff import (
    chernoff_lower_bound,
    chernoff_upper_bound,
    invert_lower_bound,
    invert_upper_bound,
    log_chernoff_upper_bound,
    select_mu,
)
from repro.exceptions import AlgorithmError

positive_m = st.floats(min_value=0.1, max_value=200, allow_nan=False)
probabilities = st.floats(min_value=1e-6, max_value=0.999, allow_nan=False)


class TestBounds:
    def test_upper_bound_at_zero_deviation(self):
        assert chernoff_upper_bound(5.0, 0.0) == pytest.approx(1.0)

    def test_lower_bound_at_zero_deviation(self):
        assert chernoff_lower_bound(5.0, 0.0) == pytest.approx(1.0)

    def test_lower_bound_limit_at_full_deviation(self):
        assert chernoff_lower_bound(3.0, 1.0) == pytest.approx(math.exp(-3.0))

    def test_bounds_in_unit_interval(self):
        for delta in (0.1, 1.0, 5.0):
            assert 0 < chernoff_upper_bound(2.0, delta) <= 1
        for gamma in (0.1, 0.5, 1.0):
            assert 0 < chernoff_lower_bound(2.0, gamma) <= 1

    @given(positive_m, st.floats(min_value=0.01, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_upper_bound_decreasing_in_delta(self, m, delta):
        assert log_chernoff_upper_bound(m, delta + 0.5) < log_chernoff_upper_bound(
            m, delta
        )

    @given(positive_m, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_decreasing_in_gamma(self, m, gamma):
        assert chernoff_lower_bound(m, gamma + 0.05) < chernoff_lower_bound(m, gamma)

    def test_empirical_validity_of_upper_bound(self):
        """Chernoff bound actually bounds the tail of a Bernoulli sum."""
        rng = np.random.default_rng(0)
        n, p = 200, 0.3
        m = n * p
        delta = 0.4
        samples = rng.binomial(n, p, size=20_000)
        empirical = np.mean(samples > (1 + delta) * m)
        assert empirical <= chernoff_upper_bound(m, delta)

    def test_empirical_validity_of_lower_bound(self):
        rng = np.random.default_rng(1)
        n, p = 200, 0.3
        m = n * p
        gamma = 0.4
        samples = rng.binomial(n, p, size=20_000)
        empirical = np.mean(samples < (1 - gamma) * m)
        assert empirical <= chernoff_lower_bound(m, gamma)


class TestInversions:
    @given(positive_m, probabilities)
    @settings(max_examples=60, deadline=None)
    def test_upper_inversion_round_trip(self, m, x):
        delta = invert_upper_bound(m, x)
        assert chernoff_upper_bound(m, delta) == pytest.approx(x, rel=1e-6)

    @given(positive_m, probabilities)
    @settings(max_examples=60, deadline=None)
    def test_lower_inversion_round_trip_or_saturates(self, m, x):
        gamma = invert_lower_bound(m, x)
        assert 0 < gamma <= 1.0
        if gamma < 1.0:
            assert chernoff_lower_bound(m, gamma) == pytest.approx(x, rel=1e-6)
        else:
            assert math.exp(-m) > x, "saturation only when even gamma=1 is too weak"

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            invert_upper_bound(0.0, 0.5)
        with pytest.raises(ValueError):
            invert_upper_bound(1.0, 1.5)
        with pytest.raises(ValueError):
            invert_lower_bound(1.0, 0.0)


class TestSelectMu:
    def test_satisfies_inequality_six(self):
        c, t, n = 20.0, 12, 38
        mu = select_mu(c, t, n)
        bound = chernoff_upper_bound(mu * c, (1 - mu) / mu)
        assert bound < 1.0 / (t * (n + 1))

    def test_near_maximal(self):
        """A slightly larger mu (beyond the safety margin) must fail (6)."""
        c, t, n = 20.0, 12, 38
        mu = select_mu(c, t, n, safety=0.999)
        larger = min(mu / 0.999 * 1.05, 1 - 1e-9)
        bound = chernoff_upper_bound(larger * c, (1 - larger) / larger)
        assert bound >= 1.0 / (t * (n + 1)) or larger >= 1 - 1e-6

    def test_mu_increases_with_capacity(self):
        small = select_mu(2.0, 12, 38)
        large = select_mu(50.0, 12, 38)
        assert large > small

    def test_tiny_capacity_raises(self):
        with pytest.raises(AlgorithmError):
            select_mu(1e-9, 12, 38)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            select_mu(1.0, 0, 38)
        with pytest.raises(ValueError):
            select_mu(-1.0, 12, 38)
        with pytest.raises(ValueError):
            select_mu(1.0, 12, 38, safety=1.5)
