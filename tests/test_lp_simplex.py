"""Tests for the from-scratch simplex backend, cross-checked against HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulations import build_bl_spm, build_rl_spm
from repro.exceptions import SolverError
from repro.lp.model import Model
from repro.lp.result import SolveStatus
from repro.lp.simplex import simplex_solve_model


class TestKnownProblems:
    def test_basic_maximization(self):
        m = Model()
        x = m.add_var("x", 0, 3)
        y = m.add_var("y")
        m.add_constr(x + 2 * y <= 4)
        m.set_objective(x + y, maximize=True)
        sol = simplex_solve_model(m)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.5)

    def test_minimization_with_ge(self):
        m = Model()
        x = m.add_var("x", 0)
        y = m.add_var("y", 0)
        m.add_constr(x + y >= 3)
        m.add_constr(x >= 1)
        m.set_objective(2 * x + y, maximize=False)
        sol = simplex_solve_model(m)
        assert sol.objective == pytest.approx(4.0)

    def test_equality(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(x + y == 5)
        m.set_objective(x - y, maximize=True)
        sol = simplex_solve_model(m)
        assert sol.objective == pytest.approx(5.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", 0, 1)
        m.add_constr(x >= 2)
        m.set_objective(x + 0, maximize=True)
        assert simplex_solve_model(m).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x")
        m.set_objective(x + 0, maximize=True)
        assert simplex_solve_model(m).status is SolveStatus.UNBOUNDED

    def test_objective_constant(self):
        m = Model()
        x = m.add_var("x", 0, 1)
        m.set_objective(x + 10, maximize=True)
        assert simplex_solve_model(m).objective == pytest.approx(11.0)

    def test_degenerate_no_cycle(self):
        # Classic Beale-style degeneracy; Bland's rule must terminate.
        m = Model()
        x1 = m.add_var("x1")
        x2 = m.add_var("x2")
        x3 = m.add_var("x3")
        m.add_constr(0.25 * x1 - 8 * x2 - x3 <= 0)
        m.add_constr(0.5 * x1 - 12 * x2 - 0.5 * x3 <= 0)
        m.add_constr(x3 <= 1)
        m.set_objective(0.75 * x1 - 20 * x2 + 0.5 * x3, maximize=True)
        sol = simplex_solve_model(m)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(1.25)

    def test_nonzero_lower_bound_rejected(self):
        m = Model()
        m.add_var("x", 1.0, 2.0)
        m.set_objective(m.variables[0] + 0, maximize=True)
        with pytest.raises(SolverError, match="lower bound 0"):
            simplex_solve_model(m)


@st.composite
def random_lp(draw):
    """A bounded random LP: box [0, ub] variables, <=/>=/== rows."""
    n = draw(st.integers(min_value=1, max_value=5))
    m_rows = draw(st.integers(min_value=0, max_value=5))
    model = Model("random")
    xs = [
        model.add_var(
            f"x{i}",
            0.0,
            draw(st.floats(min_value=0.5, max_value=10, allow_nan=False)),
        )
        for i in range(n)
    ]
    # Well-scaled coefficients only: a coefficient like 1e-9 (or 1e-266)
    # makes the answer depend on the solver's feasibility tolerance —
    # HiGHS (1e-7 primal tolerance) and an exact pivot then disagree by
    # design, not by bug — so draw exactly-zero or >= 1e-3 in magnitude.
    coef = st.one_of(
        st.just(0.0),
        st.floats(min_value=-5, max_value=5, allow_nan=False).filter(
            lambda c: abs(c) >= 1e-3
        ),
    )
    for _ in range(m_rows):
        coefs = [draw(coef) for _ in range(n)]
        expr = sum(c * x for c, x in zip(coefs, xs))
        if isinstance(expr, (int, float)):
            continue
        rhs = draw(st.floats(min_value=-10, max_value=20, allow_nan=False))
        kind = draw(st.sampled_from(["<=", ">="]))
        model.add_constr(expr <= rhs if kind == "<=" else expr >= rhs)
    objective = sum(draw(coef) * x for x in xs)
    model.set_objective(objective, maximize=draw(st.booleans()))
    return model


class TestAgainstHiGHS:
    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_random_lps_agree(self, model):
        ours = simplex_solve_model(model)
        highs = model.solve(relax_integrality=True)
        assert ours.status == highs.status
        if ours.is_optimal:
            assert ours.objective == pytest.approx(highs.objective, abs=1e-6)
            # The argmax may differ (alternate optima); feasibility must hold.
            assert model.check_feasible(ours.values, tol=1e-6)

    def test_rl_spm_relaxation_agrees(self, small_sub_b4_instance):
        problem = build_rl_spm(small_sub_b4_instance, integral=False)
        ours = simplex_solve_model(problem.model)
        highs = problem.model.solve()
        assert ours.objective == pytest.approx(highs.objective, abs=1e-6)

    def test_bl_spm_relaxation_agrees(self, small_sub_b4_instance):
        caps = {key: 2 for key in small_sub_b4_instance.edges}
        problem = build_bl_spm(small_sub_b4_instance, caps, integral=False)
        ours = simplex_solve_model(problem.model)
        highs = problem.model.solve()
        assert ours.objective == pytest.approx(highs.objective, abs=1e-6)
