"""Unit and property tests for the resilience layer (repro.resilience).

Budget and breaker run against fake clocks (no sleeping); the ladder is
exercised on the diamond fixture so every rung's decision can be checked
against the exact optimum; the hypothesis block pins the greedy rung's
contract — link-feasible, profit >= 0 — on random instances including
``restrict()`` shards and dirty pre-existing cycle state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instance import SPMInstance
from repro.core.online import commit_decision
from repro.net.topologies import random_wan
from repro.resilience import (
    RUNGS,
    CircuitBreaker,
    CycleBudget,
    DegradationLadder,
    ExponentialBackoff,
    greedy_admission,
    lp_round_admission,
)
from repro.workload.request import Request, RequestSet

from tests.conftest import make_request


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ------------------------------------------------------------- CycleBudget


class TestCycleBudget:
    def test_remaining_tracks_the_clock(self):
        clock = FakeClock()
        budget = CycleBudget(10.0, clock=clock)
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert budget.elapsed() == pytest.approx(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.expired
        clock.advance(7.0)
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_solve_limit_grants_shrinking_slices(self):
        clock = FakeClock()
        budget = CycleBudget(8.0, spread=0.5, clock=clock)
        assert budget.solve_limit() == pytest.approx(4.0)
        clock.advance(4.0)
        assert budget.solve_limit() == pytest.approx(2.0)
        # Shares split the slice; cap clips it.
        assert budget.solve_limit(shares=4) == pytest.approx(0.5)
        assert budget.solve_limit(cap=1.5) == pytest.approx(1.5)
        clock.advance(10.0)
        assert budget.solve_limit() == 0.0

    def test_affords_solver_floor(self):
        clock = FakeClock()
        budget = CycleBudget(1.0, spread=0.5, min_slice=0.1, clock=clock)
        assert budget.affords_solver()
        clock.advance(0.85)  # slice = 0.15 * 0.5 = 0.075 < 0.1
        assert not budget.affords_solver()

    def test_restart_rearms_the_full_deadline(self):
        clock = FakeClock()
        budget = CycleBudget(5.0, clock=clock)
        clock.advance(5.5)
        assert budget.expired
        budget.restart()
        assert budget.remaining() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleBudget(0.0)
        with pytest.raises(ValueError):
            CycleBudget(1.0, spread=0.0)
        with pytest.raises(ValueError):
            CycleBudget(1.0, min_slice=-0.1)
        with pytest.raises(ValueError):
            CycleBudget(1.0).solve_limit(shares=0)


# ---------------------------------------------------------- CircuitBreaker


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_seconds=5.0, clock=clock
        )
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()  # still closed below the threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.short_circuits == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_grants_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # siblings are short-circuited
        assert breaker.probes == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.0)  # inside the re-armed window
        assert breaker.state == "open"
        clock.advance(3.0)
        assert breaker.state == "half_open"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=-1.0)


# ------------------------------------------------------ ExponentialBackoff


class TestExponentialBackoff:
    def test_deterministic_for_a_seed(self):
        a = ExponentialBackoff(seed=7)
        b = ExponentialBackoff(seed=7)
        assert [a.next_delay() for _ in range(4)] == [
            b.next_delay() for _ in range(4)
        ]

    def test_grows_and_caps(self):
        backoff = ExponentialBackoff(
            base=0.1, factor=2.0, cap=0.4, jitter=0.0, seed=0
        )
        assert [backoff.next_delay() for _ in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.4]
        )
        assert backoff.total_seconds == pytest.approx(1.1)

    def test_reset_returns_to_the_first_rung(self):
        backoff = ExponentialBackoff(base=0.1, jitter=0.0)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == pytest.approx(0.1)
        # total_seconds keeps accumulating across incidents
        assert backoff.total_seconds == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=-1)
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=1.0, cap=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=-0.1)


# ------------------------------------------------------- DegradationLadder


def _fresh_state(instance):
    num_edges = len(instance.edges)
    return (
        np.zeros((num_edges, instance.num_slots)),
        np.zeros(num_edges),
    )


def _committed_profit(instance, batch_ids, decision, loads, charged):
    """Apply ``decision`` on copies; return (accepted, profit)."""
    work_loads = loads.copy()
    work_charged = charged.copy()
    cost_before = float(instance.prices @ work_charged)
    accepted = commit_decision(
        instance, batch_ids, decision, work_loads, work_charged
    )
    revenue = sum(
        instance.request(rid).value
        for rid, path in zip(batch_ids, decision)
        if path is not None
    )
    cost = float(instance.prices @ work_charged) - cost_before
    return accepted, revenue - cost


class TestDegradationLadder:
    def test_exact_rung_on_an_easy_batch(self, diamond_instance):
        ladder = DegradationLadder()
        loads, charged = _fresh_state(diamond_instance)
        outcome = ladder.decide(
            diamond_instance, [0, 1, 2], loads, charged
        )
        assert outcome.rung == "exact"
        assert outcome.cacheable
        assert ladder.counts["exact"] == 1

    def test_starved_budget_goes_straight_to_greedy(self, diamond_instance):
        clock = FakeClock()
        budget = CycleBudget(1.0, min_slice=0.05, clock=clock)
        clock.advance(0.99)
        ladder = DegradationLadder(budget=budget)
        loads, charged = _fresh_state(diamond_instance)
        outcome = ladder.decide(diamond_instance, [0, 1, 2], loads, charged)
        assert outcome.rung == "greedy"
        assert not outcome.cacheable
        assert ladder.counts["greedy"] == 1

    def test_open_breaker_goes_straight_to_greedy(self, diamond_instance):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        ladder = DegradationLadder(breaker=breaker)
        loads, charged = _fresh_state(diamond_instance)
        outcome = ladder.decide(diamond_instance, [0, 1, 2], loads, charged)
        assert outcome.rung == "greedy"
        assert breaker.short_circuits >= 1

    def test_degraded_rungs_match_exact_on_the_diamond(self, diamond_instance):
        """The diamond batch is contention-free: every rung finds the optimum."""
        batch_ids = [0, 1, 2]
        loads, charged = _fresh_state(diamond_instance)
        exact = DegradationLadder().decide(
            diamond_instance, batch_ids, loads, charged
        )
        _, exact_profit = _committed_profit(
            diamond_instance, batch_ids, list(exact.choices), loads, charged
        )
        greedy = greedy_admission(diamond_instance, batch_ids, loads, charged)
        _, greedy_profit = _committed_profit(
            diamond_instance, batch_ids, greedy, loads, charged
        )
        rounded = lp_round_admission(
            diamond_instance, batch_ids, loads, charged
        )
        assert rounded is not None
        _, lp_profit = _committed_profit(
            diamond_instance, batch_ids, rounded, loads, charged
        )
        assert greedy_profit == pytest.approx(exact_profit)
        assert lp_profit == pytest.approx(exact_profit)

    def test_start_rung_skips_the_exact_solve(self, diamond_instance):
        ladder = DegradationLadder()
        loads, charged = _fresh_state(diamond_instance)
        outcome = ladder.decide(
            diamond_instance, [0, 1, 2], loads, charged, start="lp_round"
        )
        assert outcome.rung in ("lp_round", "greedy")
        assert ladder.counts["exact"] == 0

    def test_unknown_start_rung_rejected(self, diamond_instance):
        loads, charged = _fresh_state(diamond_instance)
        with pytest.raises(ValueError):
            DegradationLadder().decide(
                diamond_instance, [0], loads, charged, start="psychic"
            )

    def test_rungs_tuple_is_ordered_best_first(self):
        assert RUNGS == ("exact", "incumbent", "lp_round", "greedy")

    def test_greedy_declines_unprofitable_requests(self, diamond):
        # value 0.5 < cheapest-path cost 2: accepting would lose money.
        requests = RequestSet(
            [make_request(0, rate=0.5, value=0.5)], num_slots=4
        )
        instance = SPMInstance.build(diamond, requests, k_paths=2)
        loads, charged = _fresh_state(instance)
        assert greedy_admission(instance, [0], loads, charged) == [None]

    def test_greedy_rides_already_charged_units_for_free(self, diamond):
        # Request 1 fits inside the unit request 0 already paid for, so
        # its tiny value is still a non-negative margin.
        requests = RequestSet(
            [
                make_request(0, rate=1.0, value=3.0),
                make_request(1, rate=0.4, value=0.1, start=1, end=1),
            ],
            num_slots=4,
        )
        instance = SPMInstance.build(diamond, requests, k_paths=2)
        loads, charged = _fresh_state(instance)
        decision = greedy_admission(instance, [0, 1], loads, charged)
        assert decision[0] is not None
        # rate 1.0 + 0.4 = 1.4 > 1 unit => extra unit costs 2 > 0.1: decline;
        # but slot-1-only overlap on the *other* path is free only if the
        # peak stays under the charged ceiling — either way the margin rule
        # keeps profit non-negative.
        _, profit = _committed_profit(
            instance, [0, 1], decision, loads, charged
        )
        assert profit >= -1e-9


# ------------------------------------------------- greedy contract (property)

SLOTS = 6


@st.composite
def instance_and_state(draw):
    """A random instance plus dirty pre-existing cycle state."""
    topo_seed = draw(st.integers(min_value=0, max_value=10_000))
    n_dcs = draw(st.integers(min_value=3, max_value=6))
    max_extra = n_dcs * (n_dcs - 1) // 2 - n_dcs
    extra = draw(st.integers(min_value=0, max_value=min(2, max_extra)))
    topo = random_wan(n_dcs, extra, price_range=(1.0, 5.0), rng=topo_seed)
    dcs = topo.datacenters

    n_requests = draw(st.integers(min_value=1, max_value=8))
    requests = []
    for i in range(n_requests):
        src_idx = draw(st.integers(min_value=0, max_value=n_dcs - 1))
        dst_off = draw(st.integers(min_value=1, max_value=n_dcs - 1))
        start = draw(st.integers(min_value=0, max_value=SLOTS - 1))
        end = draw(st.integers(min_value=start, max_value=SLOTS - 1))
        requests.append(
            Request(
                request_id=i,
                source=dcs[src_idx],
                dest=dcs[(src_idx + dst_off) % n_dcs],
                start=start,
                end=end,
                rate=draw(
                    st.floats(min_value=0.05, max_value=0.9, allow_nan=False)
                ),
                value=draw(
                    st.floats(min_value=0.0, max_value=8.0, allow_nan=False)
                ),
            )
        )
    instance = SPMInstance.build(topo, RequestSet(requests, SLOTS), k_paths=2)

    # Dirty mid-cycle state: arbitrary committed loads with the charged
    # vector anywhere between zero and well above the load ceiling.
    num_edges = len(instance.edges)
    loads = np.array(
        [
            [
                draw(st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
                for _ in range(SLOTS)
            ]
            for _ in range(num_edges)
        ]
    )
    charged = np.array(
        [
            draw(st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
            for _ in range(num_edges)
        ]
    )
    restrict = draw(st.booleans())
    return instance, loads, charged, restrict


greedy_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestGreedyContract:
    @given(instance_and_state())
    @greedy_settings
    def test_greedy_is_feasible_and_profitable(self, drawn):
        instance, loads, charged, restrict = drawn
        batch_ids = list(instance.paths)
        if restrict and len(batch_ids) > 1:
            # The sharded path: greedy must hold on restrict() views too.
            batch_ids = batch_ids[: max(1, len(batch_ids) // 2)]
            instance = instance.restrict(batch_ids)
        loads_before = loads.copy()
        charged_before = charged.copy()

        decision = greedy_admission(instance, batch_ids, loads, charged)

        # Shape and path-index validity.
        assert len(decision) == len(batch_ids)
        for rid, path in zip(batch_ids, decision):
            assert path is None or 0 <= path < instance.num_paths(rid)
        # The inputs are never mutated.
        np.testing.assert_array_equal(loads, loads_before)
        np.testing.assert_array_equal(charged, charged_before)

        # Committing the decision never loses money, and the ledgers only
        # ever ratchet upward (link-feasibility of the accounting).
        work_loads = loads.copy()
        work_charged = charged.copy()
        accepted, profit = _committed_profit(
            instance, batch_ids, decision, loads, charged
        )
        commit_decision(instance, batch_ids, decision, work_loads, work_charged)
        assert profit >= -1e-6
        assert accepted == sum(1 for path in decision if path is not None)
        assert np.all(work_loads >= loads_before - 1e-12)
        assert np.all(work_charged >= charged_before - 1e-12)
        # Every accepted request's load landed on each edge of its path.
        for rid, path in zip(batch_ids, decision):
            if path is None:
                continue
            req = instance.request(rid)
            edge_idx = instance.path_edges[rid][path]
            window = work_loads[edge_idx, req.start : req.end + 1]
            base = loads_before[edge_idx, req.start : req.end + 1]
            assert np.all(window >= base + req.rate - 1e-9)

    @given(instance_and_state())
    @greedy_settings
    def test_ladder_greedy_rung_honors_the_same_contract(self, drawn):
        instance, loads, charged, _ = drawn
        batch_ids = list(instance.paths)
        clock = FakeClock()
        budget = CycleBudget(1.0, min_slice=0.5, clock=clock)
        clock.advance(0.99)  # starved: the ladder must answer via greedy
        ladder = DegradationLadder(budget=budget)
        outcome = ladder.decide(instance, batch_ids, loads, charged)
        assert outcome.rung == "greedy"
        _, profit = _committed_profit(
            instance, batch_ids, list(outcome.choices), loads, charged
        )
        assert profit >= -1e-6
