"""Warm-started re-solves: equivalence of every reuse path to cold solves.

The warm-start layer (:mod:`repro.lp.warmstart`) is allowed to skip
solver dispatches only when the answer is *certified* unchanged, so every
suite here pits a warm path against its cold oracle and demands matching
results: byte-identical repeats, dual-certified bound shrinks, the Metis
alternation with and without warm starts, LP screening of the online
batch MILPs, and the decomposition's per-shard sessions — serial,
screened, and pooled.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instance import SPMInstance
from repro.core.maa import ImproveMemo, improve_paths, solve_maa
from repro.core.metis import Metis
from repro.core.online import OnlineScheduler, solve_batch
from repro.core.schedule import Schedule
from repro.decomp.solver import (
    DecompConfig,
    _ShardProblem,
    profit_gap_bound,
    solve_decomposed,
    solve_exact,
)
from repro.lp.fastbuild import compile_coo, with_row_upper
from repro.lp.result import SolveStatus
from repro.lp.simplex import WarmSimplex
from repro.lp.solvers import solve_compiled_raw
from repro.lp.warmstart import ResolveSession
from repro.net.topologies import random_wan
from repro.workload.request import Request, RequestSet

SLOTS = 6
_TOL = 1e-9

common_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_instance(draw, max_requests=10, value_max=5.0):
    """A small random WAN plus a random request set (test_properties idiom)."""
    topo_seed = draw(st.integers(min_value=0, max_value=10_000))
    n_dcs = draw(st.integers(min_value=3, max_value=6))
    max_extra = n_dcs * (n_dcs - 1) // 2 - n_dcs
    extra = draw(st.integers(min_value=0, max_value=min(2, max_extra)))
    topo = random_wan(n_dcs, extra, price_range=(1.0, 5.0), rng=topo_seed)
    dcs = topo.datacenters

    n_requests = draw(st.integers(min_value=1, max_value=max_requests))
    requests = []
    for i in range(n_requests):
        src_idx = draw(st.integers(min_value=0, max_value=n_dcs - 1))
        dst_off = draw(st.integers(min_value=1, max_value=n_dcs - 1))
        start = draw(st.integers(min_value=0, max_value=SLOTS - 1))
        end = draw(st.integers(min_value=start, max_value=SLOTS - 1))
        requests.append(
            Request(
                request_id=i,
                source=dcs[src_idx],
                dest=dcs[(src_idx + dst_off) % n_dcs],
                start=start,
                end=end,
                rate=draw(
                    st.floats(min_value=0.05, max_value=0.5, allow_nan=False)
                ),
                value=draw(
                    st.floats(min_value=0.0, max_value=value_max, allow_nan=False)
                ),
            )
        )
    return SPMInstance.build(topo, RequestSet(requests, SLOTS), k_paths=2)


@st.composite
def random_lp(draw):
    """A small bounded feasible LP with inequality rows (COO-built)."""
    num_vars = draw(st.integers(min_value=2, max_value=4))
    num_rows = draw(st.integers(min_value=1, max_value=3))
    objective = np.array(
        [
            draw(st.floats(min_value=-4.0, max_value=4.0, allow_nan=False))
            for _ in range(num_vars)
        ]
    )
    rows, cols, data = [], [], []
    for r in range(num_rows):
        for c in range(num_vars):
            coeff = draw(st.integers(min_value=0, max_value=2))
            if coeff:
                rows.append(r)
                cols.append(c)
                data.append(float(coeff))
    row_upper = np.array(
        [
            draw(st.floats(min_value=1.0, max_value=8.0, allow_nan=False))
            for _ in range(num_rows)
        ]
    )
    return compile_coo(
        objective=objective,
        maximize=True,
        rows=np.array(rows, dtype=np.int64),
        cols=np.array(cols, dtype=np.int64),
        data=np.array(data),
        num_rows=num_rows,
        row_lower=np.full(num_rows, -np.inf),
        row_upper=row_upper,
        var_lower=np.zeros(num_vars),
        var_upper=np.full(num_vars, 3.0),
        integrality=np.zeros(num_vars, dtype=np.int8),
    )


class TestSessionEquivalence:
    @given(random_lp())
    @common_settings
    def test_exact_repeat_returns_the_same_solution(self, compiled):
        session = ResolveSession()
        first = session.solve(compiled)
        again = session.solve(with_row_upper(compiled, compiled.row_upper.copy()))
        assert again is first  # byte-identical model -> cached object
        assert session.stats.repeat_hits == 1
        cold = solve_compiled_raw(compiled)
        assert cold.status is first.status
        if first.status is SolveStatus.OPTIMAL:
            assert first.objective == cold.objective
            assert np.array_equal(first.x, cold.x)

    @given(random_lp(), st.floats(min_value=0.0, max_value=4.0))
    @common_settings
    def test_shrink_chain_matches_cold_oracle(self, compiled, shrink):
        """Monotone row_upper shrinks: warm objective == cold objective."""
        session = ResolveSession()
        first = session.solve(compiled)
        if first.status is not SolveStatus.OPTIMAL:
            return
        tightened = np.maximum(compiled.row_upper - shrink, 0.5)
        step = with_row_upper(compiled, tightened)
        warm = session.solve(step)
        cold = solve_compiled_raw(step)
        assert warm.status is cold.status
        if cold.status is SolveStatus.OPTIMAL:
            assert warm.objective == pytest.approx(cold.objective, abs=1e-7)
            # A certified reuse must still satisfy the tightened bounds.
            if session.stats.certified_hits:
                activity = step.a_matrix @ warm.x
                assert np.all(activity <= tightened + _TOL)

    @given(random_lp(), st.floats(min_value=0.0, max_value=4.0))
    @common_settings
    def test_warm_simplex_cross_checks_the_certificate(self, compiled, shrink):
        """The dual-simplex verification backend agrees on every chain step."""
        session = ResolveSession()
        simplex = WarmSimplex()
        chain = [compiled]
        tightened = np.maximum(compiled.row_upper - shrink, 0.5)
        chain.append(with_row_upper(compiled, tightened))
        for step in chain:
            warm = session.solve(step)
            check = simplex.solve_raw(step)
            assert warm.status is check.status
            if warm.status is SolveStatus.OPTIMAL:
                assert warm.objective == pytest.approx(check.objective, abs=1e-6)

    def test_reanchor_on_new_structure_drops_cache(self):
        a = compile_coo(
            objective=np.array([1.0, 2.0]),
            maximize=True,
            rows=np.array([0, 0]),
            cols=np.array([0, 1]),
            data=np.array([1.0, 1.0]),
            num_rows=1,
            row_lower=np.array([-np.inf]),
            row_upper=np.array([4.0]),
            var_lower=np.zeros(2),
            var_upper=np.full(2, 3.0),
            integrality=np.zeros(2, dtype=np.int8),
        )
        session = ResolveSession()
        session.solve(a)
        session.solve(a)
        assert session.stats.repeat_hits == 1
        rebuilt = compile_coo(
            objective=np.array([1.0, 2.0]),
            maximize=True,
            rows=np.array([0, 0]),
            cols=np.array([0, 1]),
            data=np.array([1.0, 1.0]),
            num_rows=1,
            row_lower=np.array([-np.inf]),
            row_upper=np.array([4.0]),
            var_lower=np.zeros(2),
            var_upper=np.full(2, 3.0),
            integrality=np.zeros(2, dtype=np.int8),
        )
        session.solve(rebuilt)  # fresh arrays -> re-anchor, no stale reuse
        assert session.stats.repeat_hits == 1
        assert session.stats.cold_solves == 2


class TestMetisWarmEquivalence:
    @given(random_instance())
    @common_settings
    def test_metis_warm_vs_cold_bitwise(self, instance):
        warm = Metis(theta=3, warm_start=True).solve(instance, rng=7)
        cold = Metis(theta=3, warm_start=False).solve(instance, rng=7)
        assert warm.best.profit == cold.best.profit
        assert warm.num_rounds == cold.num_rounds
        if cold.best.schedule is None:
            assert warm.best.schedule is None
        else:
            assert (
                warm.best.schedule.assignment == cold.best.schedule.assignment
            )

    @given(random_instance())
    @common_settings
    def test_improve_paths_memo_vs_no_memo_bitwise(self, instance):
        assignment = solve_maa(instance, rng=0).schedule.assignment
        plain = improve_paths(instance, assignment)
        memoized = improve_paths(instance, assignment, memo=ImproveMemo())
        assert plain == memoized
        assert (
            Schedule(instance, plain).cost == Schedule(instance, memoized).cost
        )

    @given(random_instance())
    @common_settings
    def test_memo_survives_restrict_chains(self, instance):
        """One memo across restrict() views stays correct (shared edge space)."""
        ids = list(instance.requests.request_ids)
        memo = ImproveMemo()
        full = solve_maa(instance, rng=0).schedule.assignment
        expected_full = improve_paths(instance, full)
        assert improve_paths(instance, full, memo=memo) == expected_full
        sub = instance.restrict(ids[: max(1, len(ids) // 2)])
        sub_assignment = solve_maa(sub, rng=0).schedule.assignment
        expected_sub = improve_paths(sub, sub_assignment)
        assert improve_paths(sub, sub_assignment, memo=memo) == expected_sub


class TestScreeningEquivalence:
    @given(random_instance(value_max=1.5))
    @common_settings
    def test_online_screening_is_decision_identical(self, instance):
        plain = OnlineScheduler(lp_screen=False).run(instance)
        screened_sched = OnlineScheduler(lp_screen=True)
        screened = screened_sched.run(instance)
        assert screened.profit == plain.profit
        assert screened.schedule.assignment == plain.schedule.assignment
        assert screened_sched.screened_batches >= 0

    def test_screened_batch_is_certified_all_decline(self):
        """A provably hopeless batch returns screened OPTIMAL all-decline."""
        topo = random_wan(4, 1, price_range=(5.0, 9.0), rng=3)
        dcs = topo.datacenters
        requests = RequestSet(
            [
                Request(
                    request_id=i,
                    source=dcs[i % 4],
                    dest=dcs[(i + 1) % 4],
                    start=0,
                    end=3,
                    rate=0.4,
                    value=0.01,  # far below any path's integer-unit cost
                )
                for i in range(4)
            ],
            4,
        )
        instance = SPMInstance.build(topo, requests, k_paths=2)
        batch = list(instance.requests.request_ids)
        committed = np.zeros((instance.num_edges, instance.num_slots))
        charged = np.zeros(instance.num_edges)
        screened = solve_batch(
            instance, batch, committed, charged, lp_screen=True
        )
        cold = solve_batch(instance, batch, committed, charged)
        assert screened.screened
        assert screened.status is SolveStatus.OPTIMAL
        assert screened.objective == 0.0
        assert screened.choices == cold.choices == (None,) * len(batch)


class TestDecompWarmEquivalence:
    @given(random_instance(max_requests=8))
    @common_settings
    def test_decomp_warm_vs_cold_bitwise(self, instance):
        base = DecompConfig(num_shards=2, max_rounds=3)
        warm = solve_decomposed(instance, base)
        cold = solve_decomposed(
            instance, DecompConfig(num_shards=2, max_rounds=3, warm_start=False)
        )
        assert warm.profit == cold.profit
        assert warm.schedule.assignment == cold.schedule.assignment
        assert warm.rounds == cold.rounds

    @given(random_instance(max_requests=8))
    @common_settings
    def test_screened_decomp_respects_the_gap_bound(self, instance):
        config = DecompConfig(
            num_shards=2, max_rounds=3, screen=True, stall_rounds=2
        )
        outcome = solve_decomposed(instance, config)
        exact = solve_exact(instance)
        gap = exact.profit - outcome.profit
        assert gap <= profit_gap_bound(instance, 2) + _TOL
        # solve_decomposed always returns a capacity-feasible schedule.
        outcome.schedule.check_capacities(instance.topology.capacities())

    def test_shard_screen_keeps_a_certified_incumbent(self):
        """Hopeless effective prices: round 2's screen keeps all-decline."""
        topo = random_wan(4, 1, price_range=(1.0, 2.0), rng=5)
        dcs = topo.datacenters
        requests = RequestSet(
            [
                Request(
                    request_id=i,
                    source=dcs[i % 4],
                    dest=dcs[(i + 2) % 4],
                    start=0,
                    end=3,
                    rate=0.3,
                    value=0.5,
                )
                for i in range(6)
            ],
            4,
        )
        instance = SPMInstance.build(topo, requests, k_paths=2)
        problem = _ShardProblem(0, instance)
        huge = np.full(instance.num_edges, 50.0)
        first = problem.solve(huge, time_limit=None, screen=True)
        assert all(path is None for path in first.values())
        assert problem.screened_solves == 0  # no incumbent yet
        second = problem.solve(huge * 1.1, time_limit=None, screen=True)
        assert problem.screened_solves == 1
        assert second == first

    def test_shard_dual_perturbation_preserves_round_optimality(self):
        """Screened rounds attain the fresh solve's objective exactly."""
        topo = random_wan(5, 2, price_range=(1.0, 3.0), rng=11)
        dcs = topo.datacenters
        requests = RequestSet(
            [
                Request(
                    request_id=i,
                    source=dcs[i % 5],
                    dest=dcs[(i + 1) % 5],
                    start=0,
                    end=3,
                    rate=0.25,
                    value=4.0,
                )
                for i in range(8)
            ],
            4,
        )
        instance = SPMInstance.build(topo, requests, k_paths=2)
        shard = instance.restrict(list(instance.requests.request_ids)[:4])
        screened = _ShardProblem(0, shard)
        fresh = _ShardProblem(0, shard)
        rng = np.random.default_rng(2019)
        prices = shard.prices.copy()
        for _ in range(4):
            prices = prices * (1.0 + 0.05 * rng.random(prices.size))
            a = screened.solve(
                prices, time_limit=None, warm_start=True, screen=True
            )
            b = fresh.solve(prices, time_limit=None)
            cost_a = Schedule(shard, a).profit
            cost_b = Schedule(shard, b).profit
            assert cost_a == pytest.approx(cost_b, abs=1e-7)

    def test_pooled_rounds_match_serial_bitwise(self):
        topo = random_wan(5, 2, price_range=(1.0, 3.0), rng=13)
        topo.set_uniform_capacity(1)
        dcs = topo.datacenters
        requests = RequestSet(
            [
                Request(
                    request_id=i,
                    source=dcs[i % 5],
                    dest=dcs[(i + 2) % 5],
                    start=0,
                    end=3,
                    rate=0.6,
                    value=3.0,
                )
                for i in range(10)
            ],
            4,
        )
        instance = SPMInstance.build(topo, requests, k_paths=2)
        serial = solve_decomposed(
            instance, DecompConfig(num_shards=2, max_rounds=3)
        )
        pooled = solve_decomposed(
            instance, DecompConfig(num_shards=2, max_rounds=3, workers=2)
        )
        assert pooled.workers == 2
        assert pooled.profit == serial.profit
        assert pooled.schedule.assignment == serial.schedule.assignment
        assert pooled.rounds == serial.rounds
