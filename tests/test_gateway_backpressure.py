"""Backpressure invariants: shed accounting identity, bounded outboxes.

The hypothesis test is the satellite the issue asks for: flood a bounded
admission queue faster than it drains, under arbitrary interleavings of
offers and window closes, and the identity ``accepted + rejected + shed
+ errored == submitted`` must hold *exactly* at every cycle boundary —
no bid lost, none double-counted.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GatewayError
from repro.gateway.backpressure import GatewayCounters, PendingBid, ResponseChannel
from repro.gateway.protocol import decode_message
from repro.service.ingest import AdmissionQueue
from repro.workload.request import Request


def _request(rid: int) -> Request:
    return Request(
        request_id=rid, source="A", dest="B", start=0, end=3, rate=1.0, value=5.0
    )


class TestGatewayCounters:
    def test_identity_holds_when_partitioned(self):
        counters = GatewayCounters(
            submitted=10, accepted=4, rejected=3, shed=2, errored=1
        )
        assert counters.reconciles()
        counters.assert_reconciled(where="test")

    def test_pending_extends_identity(self):
        counters = GatewayCounters(submitted=5, accepted=2)
        assert not counters.reconciles()
        assert counters.reconciles(pending=3)

    def test_violation_raises_with_breakdown(self):
        counters = GatewayCounters(submitted=5, accepted=1)
        with pytest.raises(GatewayError, match="accepted=1"):
            counters.assert_reconciled(where="cycle 3 commit")
        with pytest.raises(GatewayError, match="cycle 3 commit"):
            counters.assert_reconciled(where="cycle 3 commit")

    def test_to_dict_round_trips_fields(self):
        counters = GatewayCounters(submitted=2, shed=1, errored=1)
        assert counters.to_dict()["shed"] == 1
        assert counters.decided == 0


# One op per submitted bid: True = a window/cycle boundary closes first.
_OPS = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=4)),
    min_size=1,
    max_size=200,
)


class TestSheddingIdentityProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=_OPS, capacity=st.integers(min_value=1, max_value=8))
    def test_flood_never_breaks_the_identity(self, ops, capacity):
        """Arbitrary offer/drain interleavings reconcile at every boundary.

        Bids arrive in bursts of 0-4 between window closes; the queue
        holds at most ``capacity``.  Every drained bid is decided
        (alternately accepted/rejected), every overflow is shed — and at
        each boundary, with nothing pending after the drain, the ledger
        must partition the submissions exactly.
        """
        counters = GatewayCounters()
        queue = AdmissionQueue(capacity)
        rid = 0
        flip = False
        for close_window, burst in ops:
            for _ in range(burst):
                counters.submitted += 1
                if queue.offer(_request(rid)):
                    pass  # pending until the next close
                else:
                    counters.shed += 1
                rid += 1
            counters.assert_reconciled(
                pending=len(queue), where=f"after burst of {burst}"
            )
            if close_window:
                for _ in queue.drain():
                    flip = not flip
                    if flip:
                        counters.accepted += 1
                    else:
                        counters.rejected += 1
                # The window boundary: nothing pending, exact identity.
                assert len(queue) == 0
                counters.assert_reconciled(where="window close")
        for _ in queue.drain():
            counters.accepted += 1
        counters.assert_reconciled(where="final drain")
        assert counters.accounted == counters.submitted == rid

    @settings(max_examples=100, deadline=None)
    @given(
        offers=st.integers(min_value=0, max_value=50),
        capacity=st.integers(min_value=1, max_value=10),
    )
    def test_shed_count_is_exactly_the_overflow(self, offers, capacity):
        queue = AdmissionQueue(capacity)
        accepted = sum(1 for i in range(offers) if queue.offer(_request(i)))
        assert accepted == min(offers, capacity)
        assert queue.shed == max(0, offers - capacity)


class TestResponseChannel:
    def test_send_queues_until_capacity(self):
        channel = ResponseChannel(capacity=3)
        for i in range(3):
            assert channel.send({"type": "decision", "i": i})
        assert len(channel) == 3 and not channel.dead

    def test_overflow_kills_the_channel_not_the_caller(self):
        channel = ResponseChannel(capacity=2)
        assert channel.send({"type": "decision", "i": 0})
        assert channel.send({"type": "decision", "i": 1})
        assert not channel.send({"type": "decision", "i": 2})
        assert channel.dead and channel.dropped == 1
        # Further sends keep counting drops without raising.
        assert not channel.send({"type": "decision", "i": 3})
        assert channel.dropped == 2

    def test_send_after_eof_is_dropped(self):
        channel = ResponseChannel(capacity=4)
        channel.close_when_done()
        assert not channel.send({"type": "decision"})
        assert channel.dropped == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResponseChannel(capacity=0)

    def test_pump_delivers_in_order_over_a_real_stream(self):
        async def scenario():
            server_channel = ResponseChannel(capacity=16)

            async def handler(reader, writer):
                for i in range(5):
                    server_channel.send({"type": "decision", "request_id": i})
                server_channel.close_when_done()
                await server_channel.pump(writer)

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            got = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                got.append(decode_message(line)["request_id"])
            writer.close()
            server.close()
            await server.wait_closed()
            return got, server_channel.sent

        got, sent = asyncio.run(scenario())
        assert got == [0, 1, 2, 3, 4]
        assert sent == 5


class TestPendingBid:
    def test_identity_semantics(self):
        channel = ResponseChannel()
        a = PendingBid(request=_request(1), channel=channel, submitted_at=0.0)
        b = PendingBid(request=_request(1), channel=channel, submitted_at=0.0)
        assert a != b and a == a
        assert len({a, b}) == 2
