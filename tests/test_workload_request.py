"""Tests for repro.workload.request."""

import pytest

from repro.exceptions import WorkloadError
from repro.workload.request import Request, RequestSet

from tests.conftest import make_request


class TestRequest:
    def test_duration_inclusive(self):
        assert make_request(start=2, end=4).duration == 3
        assert make_request(start=3, end=3).duration == 1

    def test_rate_at(self):
        req = make_request(start=1, end=2, rate=0.4)
        assert req.rate_at(0) == 0.0
        assert req.rate_at(1) == 0.4
        assert req.rate_at(2) == 0.4
        assert req.rate_at(3) == 0.0

    def test_is_active_and_slots(self):
        req = make_request(start=1, end=3)
        assert list(req.slots) == [1, 2, 3]
        assert req.is_active(1) and req.is_active(3)
        assert not req.is_active(0) and not req.is_active(4)

    def test_source_equals_dest_rejected(self):
        with pytest.raises(WorkloadError, match="source equals destination"):
            make_request(source="A", dest="A")

    def test_bad_window_rejected(self):
        with pytest.raises(WorkloadError):
            make_request(start=3, end=2)
        with pytest.raises(WorkloadError):
            make_request(start=-1, end=2)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(WorkloadError):
            make_request(rate=0.0)
        with pytest.raises(WorkloadError):
            make_request(rate=-0.5)

    def test_negative_value_rejected(self):
        with pytest.raises(WorkloadError):
            make_request(value=-1.0)

    def test_zero_value_allowed(self):
        assert make_request(value=0.0).value == 0.0

    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError):
            make_request(request_id=-1)


class TestRequestSet:
    def make_set(self):
        return RequestSet(
            [
                make_request(0, start=0, end=1, value=3.0),
                make_request(1, start=2, end=3, value=2.0),
            ],
            num_slots=4,
        )

    def test_len_iter_contains(self):
        rs = self.make_set()
        assert len(rs) == 2
        assert [r.request_id for r in rs] == [0, 1]
        assert 0 in rs and 5 not in rs

    def test_getitem(self):
        rs = self.make_set()
        assert rs[1].value == 2.0
        with pytest.raises(WorkloadError):
            rs[9]

    def test_total_value(self):
        assert self.make_set().total_value == 5.0

    def test_max_rate(self):
        rs = RequestSet(
            [make_request(0, rate=0.2), make_request(1, rate=0.7)], num_slots=1
        )
        assert rs.max_rate == 0.7
        assert RequestSet([], num_slots=1).max_rate == 0.0

    def test_duplicate_id_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            RequestSet([make_request(0), make_request(0)], num_slots=1)

    def test_window_outside_cycle_rejected(self):
        with pytest.raises(WorkloadError, match="outside the billing cycle"):
            RequestSet([make_request(0, start=0, end=5)], num_slots=4)

    def test_subset_preserves_order(self):
        rs = self.make_set()
        sub = rs.subset([1])
        assert sub.request_ids == [1]
        assert sub.num_slots == rs.num_slots

    def test_subset_unknown_id_rejected(self):
        with pytest.raises(WorkloadError, match="unknown request ids"):
            self.make_set().subset([42])

    def test_active_at(self):
        rs = self.make_set()
        assert [r.request_id for r in rs.active_at(0)] == [0]
        assert [r.request_id for r in rs.active_at(3)] == [1]

    def test_bad_num_slots(self):
        with pytest.raises(WorkloadError):
            RequestSet([], num_slots=0)
