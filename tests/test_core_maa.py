"""Tests for repro.core.maa (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.formulations import build_rl_spm
from repro.core.maa import improve_paths, round_paths, solve_maa
from repro.core.schedule import Schedule


class TestSolveMaa:
    def test_every_request_satisfied(self, small_sub_b4_instance):
        result = solve_maa(small_sub_b4_instance, rng=1)
        assert result.schedule.num_accepted == small_sub_b4_instance.num_requests

    def test_cost_at_least_fractional(self, small_sub_b4_instance):
        result = solve_maa(small_sub_b4_instance, rng=1)
        assert result.cost >= result.fractional_cost - 1e-6

    def test_deterministic_for_seed(self, small_sub_b4_instance):
        a = solve_maa(small_sub_b4_instance, rng=5)
        b = solve_maa(small_sub_b4_instance, rng=5)
        assert a.schedule.assignment == b.schedule.assignment
        assert a.cost == pytest.approx(b.cost)

    def test_alpha_is_min_positive_fractional_bandwidth(
        self, small_sub_b4_instance
    ):
        result = solve_maa(small_sub_b4_instance, rng=1)
        assert result.alpha > 0
        assert result.ceiling_ratio_bound == pytest.approx(
            (result.alpha + 1) / result.alpha
        )

    def test_integer_charging(self, small_sub_b4_instance):
        result = solve_maa(small_sub_b4_instance, rng=1)
        assert all(isinstance(u, int) for u in result.schedule.charged.values())

    def test_diamond_prefers_cheap_path(self, diamond_instance):
        result = solve_maa(diamond_instance, rng=0)
        # Optimal fractional routing puts everything on the cheap A->B->D
        # route: fractional bandwidth 1.5 on each of its two price-1 links.
        assert result.fractional_cost == pytest.approx(3.0)
        # The relaxation is integral here, so rounding follows it and the
        # ceiling charges 2 units per cheap link.
        assert result.cost == pytest.approx(4.0)
        assert result.schedule.assignment == {0: 0, 1: 0, 2: 0}


class TestRoundPaths:
    def test_rounding_follows_integral_weights(self, diamond_instance):
        weights = {0: [1.0, 0.0], 1: [0.0, 1.0], 2: [1.0, 0.0]}
        assignment = round_paths(diamond_instance, weights, rng=0)
        assert assignment == {0: 0, 1: 1, 2: 0}

    def test_rounding_distribution(self, diamond_instance):
        weights = {0: [0.5, 0.5], 1: [1.0, 0.0], 2: [1.0, 0.0]}
        rng = np.random.default_rng(0)
        picks = [
            round_paths(diamond_instance, weights, rng)[0] for _ in range(400)
        ]
        share = sum(1 for p in picks if p == 0) / len(picks)
        assert 0.4 < share < 0.6

    def test_zero_weights_fall_back_to_first_path(self, diamond_instance):
        weights = {0: [0.0, 0.0], 1: [1.0, 0.0], 2: [1.0, 0.0]}
        assignment = round_paths(diamond_instance, weights, rng=0)
        assert assignment[0] == 0

    def test_unnormalized_weights_ok(self, diamond_instance):
        weights = {0: [2.0, 2.0], 1: [3.0, 0.0], 2: [0.0, 5.0]}
        assignment = round_paths(diamond_instance, weights, rng=0)
        assert assignment[1] == 0 and assignment[2] == 1


class TestImprovePaths:
    def test_never_increases_cost(self, small_sub_b4_instance):
        result = solve_maa(small_sub_b4_instance, rng=3)
        improved = improve_paths(
            small_sub_b4_instance, result.schedule.assignment
        )
        new_cost = Schedule(small_sub_b4_instance, improved).cost
        assert new_cost <= result.cost + 1e-9

    def test_fixes_obviously_bad_assignment(self, diamond_instance):
        # Put everything on the expensive route (cost 8); single-move
        # descent moves request 0 to the cheap route (cost 6) and then
        # stalls at that local optimum — moving either remaining request
        # alone would not lower the cost.
        bad = {0: 1, 1: 1, 2: 1}
        bad_cost = Schedule(diamond_instance, bad).cost
        assert bad_cost == pytest.approx(8.0)
        improved = improve_paths(diamond_instance, bad)
        good_cost = Schedule(diamond_instance, improved).cost
        assert good_cost < bad_cost
        assert good_cost == pytest.approx(6.0)

    def test_input_not_mutated(self, diamond_instance):
        bad = {0: 1, 1: 1, 2: 1}
        improve_paths(diamond_instance, bad)
        assert bad == {0: 1, 1: 1, 2: 1}

    def test_declined_requests_untouched(self, diamond_instance):
        assignment = {0: 1, 1: None, 2: 0}
        improved = improve_paths(diamond_instance, assignment)
        assert improved[1] is None

    def test_bad_max_passes(self, diamond_instance):
        with pytest.raises(ValueError):
            improve_paths(diamond_instance, {0: 0, 1: 0, 2: 0}, max_passes=0)


class TestApproximationQuality:
    def test_rounding_ratio_reasonable(self, small_sub_b4_instance):
        """The empirical Fig. 4b property: rounding cost close to optimal."""
        result = solve_maa(small_sub_b4_instance, rng=2)
        exact = build_rl_spm(small_sub_b4_instance, integral=True).model.solve()
        assert result.cost <= 2.0 * exact.objective, (
            "rounding should stay within a small constant of optimal "
            f"(got {result.cost} vs {exact.objective})"
        )
