"""Tests for repro.sim.metrics."""

import pytest

from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError
from repro.sim.metrics import compare, evaluate_schedule


class TestEvaluateSchedule:
    def test_summary_fields(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: 0})
        metrics = evaluate_schedule("demo", schedule)
        assert metrics.solution == "demo"
        assert metrics.num_requests == 3
        assert metrics.num_accepted == 2
        assert metrics.revenue == pytest.approx(schedule.revenue)
        assert metrics.profit == pytest.approx(schedule.profit)
        assert metrics.acceptance_rate == pytest.approx(2 / 3)
        assert metrics.total_bandwidth_units == sum(schedule.charged.values())

    def test_validation_failure_raises(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        schedule.charged[("A", "B")] = 0  # tamper
        with pytest.raises(ScheduleError, match="failed validation"):
            evaluate_schedule("bad", schedule)
        # But validation can be skipped explicitly.
        metrics = evaluate_schedule("bad", schedule, validate=False)
        assert metrics.solution == "bad"

    def test_as_row_shape(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: None})
        row = evaluate_schedule("x", schedule).as_row()
        assert row[0] == "x"
        assert len(row) == 7


class TestCompare:
    def test_ratios(self, diamond_instance):
        good = evaluate_schedule(
            "good", Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        )
        small = evaluate_schedule(
            "small", Schedule(diamond_instance, {0: 0, 1: None, 2: None})
        )
        ratios = compare(good, small)
        assert ratios["revenue_ratio"] == pytest.approx(
            good.revenue / small.revenue
        )
        assert ratios["accepted_ratio"] == pytest.approx(3.0)

    def test_zero_baseline_gives_inf(self, diamond_instance):
        nothing = evaluate_schedule(
            "none", Schedule(diamond_instance, {0: None, 1: None, 2: None})
        )
        something = evaluate_schedule(
            "some", Schedule(diamond_instance, {0: 0, 1: None, 2: None})
        )
        ratios = compare(something, nothing)
        assert ratios["revenue_ratio"] == float("inf")
        # 0 over 0 reads as parity, not infinity.
        assert compare(nothing, nothing)["revenue_ratio"] == 1.0
