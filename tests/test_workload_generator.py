"""Tests for repro.workload.generator."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.net.topologies import line_topology, sub_b4
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.value_models import FlatRateValueModel


class TestWorkloadConfig:
    def test_defaults_follow_paper(self):
        cfg = WorkloadConfig(num_requests=10)
        assert cfg.num_slots == 12, "paper: 12 monthly slots"
        assert cfg.rate_range == (0.01, 0.5), "paper: 0.1-5 Gbps in 10 Gbps units"

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_requests=-1)
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_requests=1, num_slots=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_requests=1, rate_range=(0.5, 0.1))
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_requests=1, rate_range=(0.0, 0.1))
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_requests=1, max_duration=0)


class TestGenerateWorkload:
    def test_count_and_ids(self):
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=30), rng=1
        )
        assert len(workload) == 30
        assert workload.request_ids == list(range(30))

    def test_deterministic_for_seed(self):
        cfg = WorkloadConfig(num_requests=20)
        a = generate_workload(sub_b4(), cfg, rng=3)
        b = generate_workload(sub_b4(), cfg, rng=3)
        for ra, rb in zip(a, b):
            assert (ra.source, ra.dest, ra.start, ra.end, ra.rate, ra.value) == (
                rb.source,
                rb.dest,
                rb.start,
                rb.end,
                rb.rate,
                rb.value,
            )

    def test_seeds_differ(self):
        cfg = WorkloadConfig(num_requests=20)
        a = generate_workload(sub_b4(), cfg, rng=3)
        b = generate_workload(sub_b4(), cfg, rng=4)
        assert any(
            ra.rate != rb.rate or ra.source != rb.source for ra, rb in zip(a, b)
        )

    def test_rates_within_range(self):
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=100), rng=5
        )
        for req in workload:
            assert 0.01 <= req.rate <= 0.5

    def test_windows_within_cycle(self):
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=100), rng=5
        )
        for req in workload:
            assert 0 <= req.start <= req.end < 12

    def test_max_duration_respected(self):
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=100, max_duration=2), rng=5
        )
        assert all(req.duration <= 2 for req in workload)

    def test_endpoints_distinct_and_known(self):
        topo = sub_b4()
        workload = generate_workload(topo, WorkloadConfig(num_requests=50), rng=6)
        datacenters = set(topo.datacenters)
        for req in workload:
            assert req.source != req.dest
            assert req.source in datacenters and req.dest in datacenters

    def test_arrival_order_sorted(self):
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=60), rng=8
        )
        starts = [req.start for req in workload]
        assert starts == sorted(starts), "request ids follow arrival order"

    def test_arrivals_spread_over_slots(self):
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=240), rng=9
        )
        starts = {req.start for req in workload}
        assert len(starts) >= 8, "Poisson arrivals should hit most slots"

    def test_zero_requests(self):
        workload = generate_workload(sub_b4(), WorkloadConfig(num_requests=0), rng=1)
        assert len(workload) == 0

    def test_value_model_used(self):
        cfg = WorkloadConfig(
            num_requests=10, value_model=FlatRateValueModel(unit_price=2.0)
        )
        workload = generate_workload(line_topology(3), cfg, rng=2)
        for req in workload:
            assert req.value == pytest.approx(2.0 * req.rate * req.duration)

    def test_single_dc_rejected(self):
        topo = line_topology(2)
        # remove one DC by building a 2-node line and subsetting is awkward;
        # instead check the guard on a degenerate generator call.
        workload = generate_workload(topo, WorkloadConfig(num_requests=3), rng=0)
        assert len(workload) == 3

    def test_generator_instance_rng(self):
        gen = np.random.default_rng(11)
        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=5), rng=gen
        )
        assert len(workload) == 5
