"""Tests for repro.experiments.report."""

from repro.experiments.common import ExperimentResult
from repro.experiments.report import (
    chart_for_result,
    render_results,
    write_markdown_report,
)


def demo_results():
    return [
        ExperimentResult(
            experiment="fig-x",
            description="demo table",
            headers=["k", "profit"],
            rows=[[10, 1.5], [20, 2.5]],
            notes=["half-size run"],
        ),
        ExperimentResult(
            experiment="fig-y",
            description="other table",
            headers=["k", "cost"],
            rows=[[10, 3.25]],
        ),
    ]


class TestRenderResults:
    def test_all_tables_present(self):
        text = render_results(demo_results())
        assert "fig-x" in text and "fig-y" in text
        assert "demo table" in text and "other table" in text
        assert "1.500" in text


class TestChartForResult:
    def test_long_format_pivots_per_solution(self):
        result = ExperimentResult(
            experiment="fig3",
            description="",
            headers=["requests", "solution", "profit"],
            rows=[
                [10, "Metis", 1.0],
                [10, "OPT", 2.0],
                [20, "Metis", 3.0],
                [20, "OPT", 4.0],
            ],
        )
        chart = chart_for_result(result)
        assert chart is not None
        assert "o=Metis" in chart and "x=OPT" in chart

    def test_wide_format_uses_metric_columns(self):
        result = ExperimentResult(
            experiment="fig5",
            description="",
            headers=["requests", "metis_profit", "ecoflow_profit"],
            rows=[[10, 1.0, 0.5], [20, 2.0, 1.5]],
        )
        chart = chart_for_result(result)
        assert chart is not None
        assert "metis_profit" in chart

    def test_not_chartable(self):
        result = ExperimentResult(
            experiment="x",
            description="",
            headers=["tau", "profit"],
            rows=[["a", 1.0]],
        )
        assert chart_for_result(result) is None

    def test_single_point_not_chartable(self):
        result = ExperimentResult(
            experiment="x",
            description="",
            headers=["requests", "metis_profit"],
            rows=[[10, 1.0]],
        )
        assert chart_for_result(result) is None

    def test_render_results_with_charts(self):
        result = ExperimentResult(
            experiment="fig5",
            description="demo",
            headers=["requests", "metis_profit"],
            rows=[[10, 1.0], [20, 2.0]],
        )
        text = render_results([result], charts=True)
        assert "(chart)" in text


class TestMarkdownReport:
    def test_write_and_structure(self, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report(demo_results(), path, title="Run 1", preamble="intro")
        text = path.read_text()
        assert text.startswith("# Run 1")
        assert "intro" in text
        assert "## fig-x — demo table" in text
        assert "| k | profit |" in text
        assert "| 10 | 1.500 |" in text
        assert "> note: half-size run" in text
