"""Tests for repro.net.topologies — including the paper's B4/SUB-B4 shapes."""

import pytest

from repro.net.pricing import REGION_PRICES
from repro.net.topologies import (
    B4_LINKS,
    SUB_B4_LINKS,
    b4,
    line_topology,
    random_wan,
    star_topology,
    sub_b4,
)


class TestB4:
    def test_paper_dimensions(self):
        topo = b4()
        assert topo.num_datacenters == 12, "paper: 12 data centers"
        assert topo.num_edges == 38, "paper: 19 bidirectional links"

    def test_strongly_connected(self):
        b4().validate()

    def test_every_dc_has_region(self):
        topo = b4()
        assert all(topo.region(dc) is not None for dc in topo.datacenters)

    def test_intercontinental_links_cost_more(self):
        topo = b4()
        assert topo.price("DC1", "DC2") == 1.0  # NA-NA
        assert topo.price("DC1", "DC9") == pytest.approx(
            (1.0 + REGION_PRICES["asia"]) / 2
        )
        assert topo.price("DC9", "DC10") == REGION_PRICES["asia"]


class TestSubB4:
    def test_paper_dimensions(self):
        topo = sub_b4()
        assert topo.num_datacenters == 6, "paper: DC1-DC6"
        assert topo.num_edges == 14, "paper: 7 links"

    def test_subset_of_b4(self):
        assert set(SUB_B4_LINKS) <= set(B4_LINKS)

    def test_strongly_connected(self):
        sub_b4().validate()

    def test_multipath_exists(self):
        # The SPM model assumes several routing paths between DC pairs.
        paths = sub_b4().candidate_paths("DC1", "DC4", k=3)
        assert len(paths) >= 2


class TestSyntheticTopologies:
    def test_line(self):
        topo = line_topology(4, price=2.0)
        assert topo.num_datacenters == 4
        assert topo.num_edges == 6
        assert topo.price("DC1", "DC2") == 2.0

    def test_line_too_short(self):
        with pytest.raises(ValueError):
            line_topology(1)

    def test_star(self):
        topo = star_topology(3)
        assert topo.num_datacenters == 4
        assert topo.num_edges == 6
        assert topo.price("DC0", "DC2") == 1.0

    def test_star_needs_leaf(self):
        with pytest.raises(ValueError):
            star_topology(0)

    def test_random_wan_deterministic(self):
        a = random_wan(6, 3, rng=5)
        b = random_wan(6, 3, rng=5)
        assert [e.key for e in a.edges] == [e.key for e in b.edges]
        assert [e.weight for e in a.edges] == [e.weight for e in b.edges]

    def test_random_wan_size(self):
        topo = random_wan(6, 3, rng=1)
        assert topo.num_datacenters == 6
        assert topo.num_edges == 2 * (6 + 3)
        topo.validate()

    def test_random_wan_price_range(self):
        topo = random_wan(5, 2, price_range=(2.0, 3.0), rng=0)
        assert all(2.0 <= e.weight <= 3.0 for e in topo.edges)

    def test_random_wan_bad_args(self):
        with pytest.raises(ValueError):
            random_wan(2, 0)
        with pytest.raises(ValueError):
            random_wan(5, 100)
        with pytest.raises(ValueError):
            random_wan(5, 1, price_range=(3.0, 2.0))
