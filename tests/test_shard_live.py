"""Sharded live serving: the ShardedLiveEngine and the sharded gateway."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import RecoveryError
from repro.gateway import GatewayConfig, GatewayServer
from repro.gateway.engine import LiveCycleEngine
from repro.gateway.protocol import decode_message
from repro.net.topologies import star_topology, sub_b4
from repro.service.telemetry import LatencyHistogram, TelemetryCollector
from repro.shard import ShardedLiveEngine
from repro.workload.request import Request

_FAST = dict(
    topology="sub-b4",
    slots_per_cycle=4,
    window=1,
    slot_seconds=0.03,
    num_cycles=None,
    time_limit=5.0,
)

_SOURCES = ("DC1", "DC2", "DC3", "DC4")


def _bids(count, *, start_id=0, slots=4, rate=1.0, value=50.0):
    return [
        Request(
            start_id + i,
            _SOURCES[i % 4],
            _SOURCES[(i + 1) % 4],
            0,
            slots - 1,
            rate,
            value,
        )
        for i in range(count)
    ]


def _bid_line(req: Request) -> bytes:
    record = {
        "request_id": req.request_id,
        "source": req.source,
        "dest": req.dest,
        "start": req.start,
        "end": req.end,
        "rate": req.rate,
        "value": req.value,
    }
    return (json.dumps(record) + "\n").encode()


async def _connect(server: GatewayServer):
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    hello = decode_message(await asyncio.wait_for(reader.readline(), 10.0))
    assert hello["type"] == "hello"
    return reader, writer


async def _read(reader) -> dict:
    line = await asyncio.wait_for(reader.readline(), timeout=10.0)
    assert line
    return decode_message(line)


class TestShardedLiveEngine:
    def _engine(self, shards=2, **kwargs) -> ShardedLiveEngine:
        return ShardedLiveEngine(
            sub_b4(), 4, shards=shards, time_limit=5.0, **kwargs
        )

    def test_decisions_come_back_in_input_order(self):
        engine = self._engine()
        batch = _bids(8)
        choices = engine.decide(batch, window_start=0)
        assert len(choices) == len(batch)
        merged = {}
        for sub_engine in engine._engines:
            merged.update(sub_engine.assignment)
        for req, choice in zip(batch, choices):
            assert engine.seen(req.request_id)
            assert merged[req.request_id] == choice
        assert engine.requests == batch

    def test_combined_cycle_result_sums_the_fleet(self):
        engine = self._engine()
        batch = _bids(10)
        engine.decide(batch, window_start=0, window_shed=2)
        result = engine.close_cycle()
        shard_results = engine._last_shard_results
        assert len(shard_results) == 2
        assert result.num_requests == len(batch) + 2
        assert result.accepted == sum(r.accepted for r in shard_results)
        assert result.declined == sum(r.declined for r in shard_results)
        assert result.shed == 2
        assert result.revenue == pytest.approx(
            sum(r.revenue for r in shard_results)
        )
        assert result.cost == pytest.approx(
            sum(r.cost for r in shard_results)
        )
        assert result.profit == pytest.approx(result.revenue - result.cost)
        assert sorted(result.assignment) == sorted(
            req.request_id for req in batch
        )
        # Batch records land in decision order; purchases sum per edge.
        assert result.batches == engine.batches
        for edge, units in result.purchased.items():
            assert units == pytest.approx(
                sum(r.purchased.get(edge, 0.0) for r in shard_results)
            )
        counters = engine.shard_counters()
        assert set(counters) == {0, 1}
        assert sum(c["accepted"] for c in counters.values()) == result.accepted
        assert sum(c["shed"] for c in counters.values()) == 2

    def test_cycles_advance_across_all_shards(self):
        engine = self._engine()
        engine.decide(_bids(4), window_start=0)
        engine.close_cycle()
        engine.start_cycle(1)
        assert engine.cycle == 1
        assert engine.requests == [] and engine.batches == []
        assert not engine.seen(0)
        engine.decide(_bids(4, start_id=100), window_start=0)
        result = engine.close_cycle()
        assert result.cycle == 1
        assert sorted(result.assignment) == [100, 101, 102, 103]

    def test_joint_oversubscription_raises_duals_and_steers_windows(self):
        # A star where every bid crosses the (DC0, DC1) hub link of
        # capacity 2.  Each shard enforces the cap *locally*, so two
        # shards accepting a rate-2 bid each jointly load the link to 4 —
        # the ledger must notice, price the link up, and make the next
        # window's marginal bid unprofitable.
        topo = star_topology(8)
        topo.set_uniform_capacity(2)
        engine = ShardedLiveEngine(topo, 4, shards=3, time_limit=5.0)
        by_shard: dict[int, list[str]] = {}
        for node, shard in engine._shard_of.items():
            if node not in ("DC0", "DC1"):
                by_shard.setdefault(shard, []).append(node)
        assert len(by_shard) == 3, "stable hash left a shard empty"
        src_a, src_b, src_c = (
            sorted(by_shard[shard])[0] for shard in sorted(by_shard)
        )

        window0 = [
            Request(0, src_a, "DC1", 0, 0, 2.0, 50.0),
            Request(1, src_b, "DC1", 0, 0, 2.0, 50.0),
        ]
        choices = engine.decide(window0, window_start=0)
        assert choices == [0, 0]  # locally feasible: both shards accept
        # Joint hub-link load 4 against capacity 2: one subgradient step
        # of the harmonic schedule (step0 = mean price = 1) adds 1 * 2.
        assert engine.ledger.price_iterations == 1
        hub = next(
            i
            for i, edge in enumerate(engine.ledger.edges)
            if set(edge) == {"DC0", "DC1"}
        )
        assert engine.ledger.duals[hub] == pytest.approx(2.0)
        assert float(engine.ledger.duals.sum()) == pytest.approx(2.0)

        # A disjoint-slot bid worth 3.0 from the idle third shard: its
        # true cost is 2.0 (one unit on each of two links), so an
        # unsteered engine accepts it -- but against the dual surcharge
        # the effective cost is 4.0 and the fleet must decline.
        probe = Request(2, src_c, "DC1", 1, 1, 1.0, 3.0)
        control = LiveCycleEngine(topo, 4, time_limit=5.0)
        assert control.decide([probe], window_start=1) == [0]
        assert engine.decide([probe], window_start=1) == [None]
        engine.close_cycle()

    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedLiveEngine(sub_b4(), 4, shards=0)
        with pytest.raises(ValueError, match="partition"):
            ShardedLiveEngine(sub_b4(), 4, shards=2, partition="modulo")


class TestShardedGateway:
    def _serve(self, *, shards=2, wal=None, resume=False, count=12):
        async def scenario():
            config = GatewayConfig(
                **_FAST,
                shards=shards,
                wal_path=wal,
                fsync="always" if wal else "batch",
                resume=resume,
            )
            server = GatewayServer(config)
            await server.start()
            reader, writer = await _connect(server)
            start_id = 1000 if resume else 0
            bids = _bids(count, start_id=start_id)
            writer.writelines([_bid_line(req) for req in bids])
            await writer.drain()
            decisions = [await _read(reader) for _ in range(count)]
            writer.close()
            await server.stop()
            return server, decisions

        return asyncio.run(scenario())

    def test_sharded_gateway_serves_and_accounts_exactly(self):
        server, decisions = self._serve()
        assert all(d["type"] == "decision" for d in decisions)
        server.counters.assert_reconciled(where="test epilogue")
        assert server.counters.submitted == 12
        summary = server.report()
        assert summary["num_shards"] == 2
        # Per-shard telemetry sections cover every decided bid.
        shard_total = sum(
            section["decisions"]
            for section in server.telemetry.shards.values()
        )
        assert shard_total == (
            server.counters.accepted + server.counters.rejected
        )

    def test_sharded_matches_unsharded_on_uncapped_topology(self):
        # sub-B4 is uncapped and these bids are far above cost, so the
        # sharded fleet must accept exactly what the monolithic gateway
        # does, for exactly the same total profit.
        mono, mono_decisions = self._serve(shards=1)
        sharded, sharded_decisions = self._serve(shards=2)
        assert all(d["decision"] == "accept" for d in mono_decisions)
        assert all(d["decision"] == "accept" for d in sharded_decisions)
        assert sum(c.profit for c in sharded.cycles) == pytest.approx(
            sum(c.profit for c in mono.cycles)
        )

    def test_sharded_wal_resume_is_bit_identical(self, tmp_path):
        wal = tmp_path / "sharded.wal"
        first, _ = self._serve(wal=wal)
        resumed, _ = self._serve(wal=wal, resume=True)
        assert first.cycles and len(resumed.cycles) >= len(first.cycles)
        for replayed, reference in zip(resumed.cycles, first.cycles):
            assert replayed.cycle == reference.cycle
            assert replayed.assignment == reference.assignment
            assert replayed.purchased == reference.purchased
            assert replayed.profit == reference.profit

    def test_resume_under_different_shard_count_refuses(self, tmp_path):
        wal = tmp_path / "sharded.wal"
        self._serve(wal=wal, shards=2)
        with pytest.raises(RecoveryError):
            self._serve(wal=wal, shards=3, resume=True)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="shards"):
            GatewayConfig(**_FAST, shards=0)
        with pytest.raises(ValueError, match="partition"):
            GatewayConfig(**_FAST, partition="rr")


class TestShardTelemetry:
    def test_record_shard_accumulates_numeric_counters(self):
        telemetry = TelemetryCollector()
        telemetry.record_shard(0, {"decisions": 4, "revenue": 2.5})
        telemetry.record_shard(0, {"decisions": 3, "revenue": 1.5})
        telemetry.record_shard(1, {"decisions": 7})
        assert telemetry.shards[0]["decisions"] == 7
        assert telemetry.shards[0]["revenue"] == pytest.approx(4.0)
        assert telemetry.shards[1]["decisions"] == 7
        assert telemetry.summary()["num_shards"] == 2

    def test_dump_json_emits_shard_sections(self, tmp_path):
        telemetry = TelemetryCollector()
        telemetry.record_shard(1, {"decisions": 2, "profit": 1.25})
        path = tmp_path / "telemetry.json"
        telemetry.dump_json(path)
        payload = json.loads(path.read_text())
        assert payload["shards"] == {"1": {"decisions": 2, "profit": 1.25}}

    def test_latency_histogram_merged(self):
        parts = []
        for base in (0.001, 0.01, 0.1):
            histogram = LatencyHistogram()
            for k in range(10):
                histogram.record(base * (k + 1))
            parts.append(histogram)
        merged = LatencyHistogram.merged(parts)
        assert merged.total == sum(p.total for p in parts) == 30
        assert merged.sum_seconds == pytest.approx(
            sum(p.sum_seconds for p in parts)
        )
        assert merged.max_observed == pytest.approx(
            max(p.max_observed for p in parts)
        )
        # Bucket-exact: merging is the same as recording every sample
        # (mean aside, where only summation order differs).
        whole = LatencyHistogram()
        for base in (0.001, 0.01, 0.1):
            for k in range(10):
                whole.record(base * (k + 1))
        assert (merged.counts == whole.counts).all()
        assert merged.summary() == pytest.approx(whole.summary())
        assert LatencyHistogram.merged([]).total == 0
