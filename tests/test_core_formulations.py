"""Tests for repro.core.formulations."""

import pytest

from repro.core.formulations import (
    assignment_from_solution,
    build_bl_spm,
    build_rl_spm,
    build_spm,
    fractional_x,
)
from repro.exceptions import ModelError


class TestRlSpm:
    def test_relaxation_satisfies_everyone(self, diamond_instance):
        problem = build_rl_spm(diamond_instance, integral=False)
        sol = problem.model.solve()
        assert sol.is_optimal
        weights = fractional_x(problem, sol)
        for req in diamond_instance.requests:
            assert sum(weights[req.request_id]) == pytest.approx(1.0)

    def test_relaxation_cost_lower_bounds_ilp(self, small_sub_b4_instance):
        relaxed = build_rl_spm(small_sub_b4_instance, integral=False).model.solve()
        exact = build_rl_spm(small_sub_b4_instance, integral=True).model.solve()
        assert relaxed.objective <= exact.objective + 1e-6

    def test_ilp_charges_integer_bandwidth(self, diamond_instance):
        problem = build_rl_spm(diamond_instance, integral=True)
        sol = problem.model.solve()
        for var in problem.c_vars.values():
            assert float(sol[var]).is_integer()

    def test_diamond_optimal_routing(self, diamond_instance):
        # Cheap path can carry everything within 2 units; LP should not pay
        # for the expensive route.
        problem = build_rl_spm(diamond_instance, integral=True)
        sol = problem.model.solve()
        assert sol.objective == pytest.approx(4.0)  # 2 units x 2 links x price 1


class TestBlSpm:
    def test_zero_capacity_declines_all(self, diamond_instance):
        caps = {key: 0 for key in diamond_instance.edges}
        problem = build_bl_spm(diamond_instance, caps, integral=True)
        sol = problem.model.solve()
        assert sol.objective == pytest.approx(0.0)
        assignment = assignment_from_solution(problem, sol)
        assert all(p is None for p in assignment.values())

    def test_ample_capacity_accepts_all(self, diamond_instance):
        caps = {key: 100 for key in diamond_instance.edges}
        problem = build_bl_spm(diamond_instance, caps, integral=True)
        sol = problem.model.solve()
        assert sol.objective == pytest.approx(
            diamond_instance.requests.total_value
        )

    def test_capacity_forces_choice(self, diamond, diamond_requests):
        from repro.core.instance import SPMInstance

        inst = SPMInstance.build(diamond, diamond_requests, k_paths=1)
        # One unit on the single candidate path: requests 0 and 1 (rate .6)
        # cannot share a slot with each other plus request 2 (rate .3)...
        # slot 1 has all three -> load 1.5 > 1, so the ILP must drop value.
        caps = {key: 1 for key in inst.edges}
        problem = build_bl_spm(inst, caps, integral=True)
        sol = problem.model.solve()
        assert sol.objective < inst.requests.total_value

    def test_missing_capacity_rejected(self, diamond_instance):
        with pytest.raises(ModelError, match="capacities missing"):
            build_bl_spm(diamond_instance, {}, integral=False)


class TestSpm:
    def test_profit_at_least_zero(self, small_sub_b4_instance):
        sol = build_spm(small_sub_b4_instance, integral=True).model.solve()
        assert sol.objective >= -1e-9, "declining everything gives zero"

    def test_spm_at_least_rl_spm_profit(self, small_sub_b4_instance):
        spm = build_spm(small_sub_b4_instance, integral=True).model.solve()
        rl = build_rl_spm(small_sub_b4_instance, integral=True).model.solve()
        accept_all_profit = small_sub_b4_instance.requests.total_value - rl.objective
        assert spm.objective >= accept_all_profit - 1e-6

    def test_topology_capacity_bounds_purchase(self, diamond, diamond_requests):
        from repro.core.instance import SPMInstance

        capped = diamond.copy()
        capped.set_uniform_capacity(1)
        inst = SPMInstance.build(capped, diamond_requests, k_paths=2)
        problem = build_spm(inst, integral=True)
        sol = problem.model.solve()
        for var in problem.c_vars.values():
            assert sol[var] <= 1 + 1e-9


class TestSolutionReaders:
    def test_assignment_from_integral_solution(self, diamond_instance):
        problem = build_rl_spm(diamond_instance, integral=True)
        sol = problem.model.solve()
        assignment = assignment_from_solution(problem, sol)
        assert set(assignment) == {0, 1, 2}
        assert all(p is not None for p in assignment.values())

    def test_fractional_rejected_by_assignment_reader(self, diamond_instance):
        problem = build_rl_spm(diamond_instance, integral=False)
        sol = problem.model.solve()
        weights = fractional_x(problem, sol)
        has_fraction = any(
            0.01 < w < 0.99 for ws in weights.values() for w in ws
        )
        if has_fraction:
            with pytest.raises(ModelError):
                assignment_from_solution(problem, sol)

    def test_fractional_x_clipped(self, diamond_instance):
        problem = build_rl_spm(diamond_instance, integral=False)
        sol = problem.model.solve()
        for ws in fractional_x(problem, sol).values():
            assert all(0.0 <= w <= 1.0 for w in ws)
