"""Smoke tests: the fast example scripts must run end to end.

Only the examples that finish in seconds are exercised here; the heavier
studies (profit_study_b4, capacity_planning, risk_analysis,
online_bidding, deadline_flexibility) are exercised piecewise by the unit
suites of the APIs they call.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["custom_topology.py", "np_hardness_demo.py", "live_gateway.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate their output"


def test_all_examples_present():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    expected = {
        "quickstart.py",
        "profit_study_b4.py",
        "capacity_planning.py",
        "custom_topology.py",
        "online_bidding.py",
        "np_hardness_demo.py",
        "risk_analysis.py",
        "deadline_flexibility.py",
        "live_gateway.py",
    }
    assert expected <= scripts
