"""Tests for repro.sim.sensitivity."""

import pytest

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import EdgeNotFoundError
from repro.sim.sensitivity import link_failure_impact, price_sensitivity
from repro.workload.request import RequestSet

from tests.conftest import make_request


@pytest.fixture
def committed(diamond):
    """Two accepted requests: one on the cheap path, one on the expensive."""
    requests = RequestSet(
        [
            make_request(0, start=0, end=1, rate=0.6, value=5.0),
            make_request(1, start=0, end=1, rate=0.6, value=4.0),
        ],
        num_slots=2,
    )
    inst = SPMInstance.build(diamond, requests, k_paths=2)
    return Schedule(inst, {0: 0, 1: 1})


class TestPriceSensitivity:
    def test_profit_linear_in_multiplier(self, committed):
        points, _ = price_sensitivity(committed, multipliers=(0.0, 1.0, 2.0))
        assert points[0].profit == pytest.approx(committed.revenue)
        assert points[1].profit == pytest.approx(committed.profit)
        assert points[2].profit == pytest.approx(
            committed.revenue - 2 * committed.cost
        )

    def test_break_even(self, committed):
        _, break_even = price_sensitivity(committed)
        assert break_even == pytest.approx(committed.revenue / committed.cost)
        points, _ = price_sensitivity(committed, multipliers=(break_even,))
        assert points[0].profit == pytest.approx(0.0, abs=1e-9)

    def test_no_bandwidth_schedule(self, diamond_instance):
        empty = Schedule(diamond_instance, {0: None, 1: None, 2: None})
        points, break_even = price_sensitivity(empty, multipliers=(1.0, 5.0))
        assert break_even is None
        assert all(p.profit == 0.0 for p in points)

    def test_negative_multiplier_rejected(self, committed):
        with pytest.raises(ValueError):
            price_sensitivity(committed, multipliers=(-1.0,))


class TestLinkFailure:
    def test_reroute_within_purchased(self, committed):
        # Fail the expensive route; request 1 cannot fit on the cheap
        # path's single purchased unit (0.6 + 0.6 > 1), so it is dropped.
        report = link_failure_impact(committed, ("A", "C"))
        assert report.affected_requests == [1]
        assert report.dropped == [1]
        assert report.revenue_lost == pytest.approx(4.0)
        assert report.stranded_cost > 0

    def test_reroute_with_new_purchases(self, committed):
        report = link_failure_impact(
            committed, ("A", "C"), allow_new_purchases=True
        )
        assert report.dropped == []
        assert report.rerouted == {1: 0}
        assert report.extra_units_bought > 0
        # Revenue kept, but profit pays both the stranded and the new units.
        assert report.new_profit < committed.profit

    def test_unaffected_link(self, committed):
        # Failing a link neither request uses changes nothing but strands
        # nothing either (no units purchased there).
        report = link_failure_impact(committed, ("C", "D")) if False else None
        # C->D *is* used by request 1's path A->C->D; use B->... no spare
        # link exists in the diamond, so instead verify the API contract on
        # an unknown link.
        with pytest.raises(EdgeNotFoundError):
            link_failure_impact(committed, ("A", "Z"))

    def test_failure_on_cheap_path_prefers_high_value(self, diamond):
        # Three cheap-path requests, capacity for only one on the alternate
        # route after failure: the highest bid must win the reroute.
        requests = RequestSet(
            [
                make_request(0, start=0, end=0, rate=0.6, value=1.0),
                make_request(1, start=0, end=0, rate=0.6, value=9.0),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        schedule = Schedule(
            inst,
            {0: 0, 1: 0},
            charged={
                ("A", "B"): 2,
                ("B", "D"): 2,
                ("A", "C"): 1,
                ("C", "D"): 1,
            },
        )
        report = link_failure_impact(schedule, ("A", "B"))
        assert report.rerouted == {1: 1}, "highest bid rerouted first"
        assert report.dropped == [0]

    def test_new_profit_accounting(self, committed):
        report = link_failure_impact(committed, ("A", "C"))
        expected = committed.revenue - report.revenue_lost - committed.cost
        assert report.new_profit == pytest.approx(expected)

    def test_repurchase_never_worse_than_strict(self, small_sub_b4_instance):
        from repro.core.maa import solve_maa

        schedule = solve_maa(small_sub_b4_instance, rng=0).schedule
        for key in list(schedule.charged):
            if schedule.charged[key] == 0:
                continue
            strict = link_failure_impact(schedule, key)
            flexible = link_failure_impact(schedule, key, allow_new_purchases=True)
            assert flexible.new_profit >= strict.new_profit - 1e-9
            assert set(flexible.dropped) <= set(strict.dropped) | set(
                flexible.dropped
            )

    def test_repurchase_only_when_profitable(self, small_sub_b4_instance):
        from repro.core.maa import solve_maa

        schedule = solve_maa(small_sub_b4_instance, rng=0).schedule
        for key in list(schedule.charged):
            if schedule.charged[key] == 0:
                continue
            report = link_failure_impact(schedule, key, allow_new_purchases=True)
            # Buying units is only allowed when it beats refunding, so the
            # flexible profit never drops below "drop everything affected".
            floor = (
                schedule.revenue
                - sum(
                    small_sub_b4_instance.request(rid).value
                    for rid in report.affected_requests
                )
                - schedule.cost
            )
            assert report.new_profit >= floor - 1e-9
