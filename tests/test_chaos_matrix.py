"""The solver-fault chaos matrix: every fault, every cycle still commits.

Each scenario injects one failure mode from :class:`repro.state.FaultPlan`
— a solver hang eating the cycle budget, a pool worker crash loop, a
byzantine-slow worker behind the hedged sharded broker, a slow-loris
gateway client, a torn ledger-journal write — and asserts the same
contract: **100% of cycles commit a feasible schedule**, the accounting
identity ``accepted + declined + shed == submitted`` holds at every
commit, and the degradation machinery left the telemetry fingerprints it
should (rung counts, hedges, breaker/backoff counters).
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.gateway import GatewayConfig, GatewayServer
from repro.gateway.protocol import decode_message
from repro.service import Broker, BrokerConfig
from repro.shard import ShardConfig, ShardedBroker
from repro.state import FaultPlan, SimulatedCrash

_BASE = dict(
    topology="sub-b4",
    num_cycles=2,
    slots_per_cycle=6,
    requests_per_cycle=18,
    seed=2019,
    time_limit=240.0,
)


def _assert_cycles_commit(report, num_cycles: int) -> None:
    """Every cycle committed, with the accounting identity intact."""
    assert [c.cycle for c in report.cycles] == list(range(num_cycles))
    for cycle in report.cycles:
        assert cycle.accepted + cycle.declined + cycle.shed == (
            cycle.num_requests
        ), f"cycle {cycle.cycle} accounting leak"
        # A committed cycle is feasible by construction (commit_decision
        # ratchets the ledgers); profit decomposition must reconcile.
        assert cycle.profit == pytest.approx(cycle.revenue - cycle.cost)


class TestSolverHang:
    def test_hang_eats_the_budget_but_every_cycle_commits(self, tmp_path):
        """An injected stuck-presolve stall degrades the rest of the cycle."""
        budget = 1.0
        config = BrokerConfig(**_BASE, max_batch=4, cycle_budget=budget)
        faults = FaultPlan(
            hang_solver_seconds=budget,
            hang_once_path=str(tmp_path / "hang.latch"),
        )
        started = time.perf_counter()
        report = Broker(config, faults=faults).run()
        wall = time.perf_counter() - started

        _assert_cycles_commit(report, config.num_cycles)
        summary = report.summary()
        rungs = summary["rung_counts"]
        # The hang fired inside the first granted solve (which still
        # finished), then the exhausted budget forced greedy answers for
        # the rest of cycle 0; cycle 1 re-armed and solved exactly.
        assert rungs.get("exact", 0) > 0
        assert rungs.get("greedy", 0) > 0
        # Commit latency: the worst cycle pays the hang plus the one
        # granted solve slice — never an unbounded stall.
        worst = max(c.wall_seconds for c in report.cycles)
        assert worst <= 2 * budget + 2.0
        assert wall <= config.num_cycles * (2 * budget + 2.0)

    def test_without_the_fault_no_degraded_rungs(self):
        config = BrokerConfig(**_BASE, max_batch=4, cycle_budget=30.0)
        report = Broker(config).run()
        _assert_cycles_commit(report, config.num_cycles)
        rungs = report.summary()["rung_counts"]
        assert rungs.get("greedy", 0) == 0
        assert rungs.get("lp_round", 0) == 0


class TestWorkerCrashLoop:
    def test_killed_worker_restarts_with_backoff_and_recommits(self, tmp_path):
        faults = FaultPlan(
            kill_worker_cycle=1, once_path=str(tmp_path / "kill.latch")
        )
        config = BrokerConfig(**_BASE, workers=2, cycle_budget=30.0)
        report = Broker(config, faults=faults).run()

        _assert_cycles_commit(report, config.num_cycles)
        summary = report.summary()
        assert summary["worker_restarts"] >= 1
        assert summary["backoff_seconds"] > 0.0
        # The retried cycle replays deterministically: the run's decisions
        # match an entirely faultless run.
        clean = Broker(BrokerConfig(**_BASE, workers=2, cycle_budget=30.0)).run()
        assert report.decision_log() == clean.decision_log()
        assert report.profit == pytest.approx(clean.profit)


class TestByzantineSlowWorker:
    def test_sick_shard_is_hedged_while_siblings_stay_exact(self, tmp_path):
        """One elected slow worker cannot hold the fleet past its deadline."""
        budget = 0.75
        config = ShardConfig(
            **_BASE,
            shards=2,
            workers=2,
            cycle_budget=budget,
            breaker_failures=2,
        )
        faults = FaultPlan(
            slow_worker_seconds=2.0,
            slow_worker_path=str(tmp_path / "slow.latch"),
        )
        broker = ShardedBroker(config, faults=faults)
        report = broker.run()

        _assert_cycles_commit(report, config.num_cycles)
        summary = report.summary()
        # At least one shard solve was hedged past the deadline and
        # re-decided locally (visible in the per-shard telemetry).
        hedges = sum(
            int(section.get("hedged_solves", 0))
            for section in summary.get("shards", {}).values()
        )
        assert hedges >= 1
        assert summary["breaker_failures"] >= 1
        # Both shards answered in every cycle: the slow worker degraded
        # its shard, it did not black-hole it.
        for cycle in report.cycles:
            assert cycle.num_requests > 0


class TestSlowLorisClient:
    def test_stalled_partial_line_cannot_stall_the_decision_loop(self):
        """A client that never finishes its bid line starves nothing."""
        config = GatewayConfig(
            topology="sub-b4",
            slots_per_cycle=4,
            window=1,
            slot_seconds=0.03,
            num_cycles=2,
            time_limit=5.0,
            cycle_budget=1.0,
        )

        async def scenario():
            server = GatewayServer(config)
            await server.start()
            host, port = server.address

            # The slow loris: half a bid, then silence (socket held open).
            loris_reader, loris_writer = await asyncio.open_connection(
                host, port
            )
            await loris_reader.readline()  # hello
            loris_writer.write(b'{"request_id": 999, "sour')
            await loris_writer.drain()

            # A healthy client racing real cycle deadlines.
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()  # hello
            bids = [
                json.dumps(
                    {
                        "request_id": rid,
                        "source": "DC1",
                        "dest": "DC4",
                        "start": 0,
                        "end": 3,
                        "rate": 1.0,
                        "value": 50.0,
                    }
                ).encode()
                + b"\n"
                for rid in range(5)
            ]
            writer.writelines(bids)
            await writer.drain()
            decisions = [
                decode_message(
                    await asyncio.wait_for(reader.readline(), timeout=10.0)
                )
                for _ in range(5)
            ]
            await server.wait_closed()  # num_cycles=2 ends the run
            loris_writer.close()
            writer.close()
            return server, decisions

        server, decisions = asyncio.run(scenario())
        assert len(server.cycles) == 2
        assert all(d["type"] == "decision" for d in decisions)
        # The healthy client's five bids were all decided; the loris's
        # half-line never became a decision — at most a structured error
        # at teardown — and the identity holds either way.
        server.counters.assert_reconciled(where="chaos epilogue")
        assert server.counters.accepted + server.counters.rejected == 5
        assert server.counters.submitted - server.counters.errored == 5


class TestTornLedgerWrite:
    def test_torn_fleet_ledger_heals_on_resume(self, tmp_path):
        """A write torn mid-frame in the fleet ledger recovers to a prefix."""
        fields = {**_BASE, "shards": 2, "wal_path": tmp_path / "fleet.wal"}
        baseline = ShardedBroker(
            ShardConfig(**{**fields, "wal_path": tmp_path / "base.wal"})
        ).run()

        faults = FaultPlan(torn_write_at=3)
        with pytest.raises(SimulatedCrash):
            ShardedBroker(ShardConfig(**fields), faults=faults).run()

        resumed = ShardedBroker(ShardConfig(**fields)).run(resume=True)
        _assert_cycles_commit(resumed, _BASE["num_cycles"])
        assert resumed.decision_log() == baseline.decision_log()
        assert resumed.profit == pytest.approx(baseline.profit)
