"""Tests for repro.core.taa (Algorithm 2)."""

import math

import pytest

from repro.core.formulations import build_bl_spm
from repro.core.instance import SPMInstance
from repro.core.taa import solve_taa
from repro.exceptions import AlgorithmError
from repro.workload.request import RequestSet

from tests.conftest import make_request


def uniform_caps(instance, units):
    return {key: units for key in instance.edges}


class TestFeasibility:
    def test_respects_capacities(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 1)
        result = solve_taa(small_sub_b4_instance, caps)
        result.schedule.check_capacities(caps)  # no raise

    def test_zero_capacity_declines_everything(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 0)
        result = solve_taa(small_sub_b4_instance, caps)
        assert result.schedule.num_accepted == 0
        assert result.revenue == 0.0

    def test_ample_capacity_accepts_everything(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 1000)
        result = solve_taa(small_sub_b4_instance, caps)
        assert (
            result.schedule.num_accepted == small_sub_b4_instance.num_requests
        ), "with no scarcity nothing should be declined"

    def test_missing_capacity_rejected(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 5)
        caps.pop(next(iter(caps)))
        with pytest.raises(AlgorithmError, match="every"):
            solve_taa(small_sub_b4_instance, caps)

    def test_non_integer_capacity_rejected(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 5)
        caps[next(iter(caps))] = 2.5  # type: ignore[assignment]
        with pytest.raises(AlgorithmError):
            solve_taa(small_sub_b4_instance, caps)


class TestRevenueQuality:
    def test_revenue_bounded_by_relaxation(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 2)
        result = solve_taa(small_sub_b4_instance, caps)
        assert result.revenue <= result.relaxation_revenue + 1e-6

    def test_revenue_at_least_certified_floor(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 3)
        result = solve_taa(small_sub_b4_instance, caps)
        if result.certified:
            assert result.revenue >= result.revenue_floor - 1e-9

    def test_certified_run_needs_no_repair(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 3)
        result = solve_taa(small_sub_b4_instance, caps)
        if result.certified:
            assert result.num_repairs == 0

    def test_beats_half_of_ilp_on_small_instance(self, diamond_instance):
        caps = uniform_caps(diamond_instance, 1)
        result = solve_taa(diamond_instance, caps)
        exact = build_bl_spm(diamond_instance, caps, integral=True).model.solve()
        assert result.revenue >= 0.5 * exact.objective - 1e-6

    def test_augmentation_only_adds(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 2)
        bare = solve_taa(small_sub_b4_instance, caps, augment=False)
        augmented = solve_taa(small_sub_b4_instance, caps)
        assert augmented.revenue >= bare.revenue - 1e-9
        assert augmented.schedule.num_accepted >= bare.schedule.num_accepted


class TestParameters:
    def test_mu_in_unit_interval(self, small_sub_b4_instance):
        result = solve_taa(small_sub_b4_instance, uniform_caps(small_sub_b4_instance, 5))
        assert 0 < result.mu < 1

    def test_deterministic(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 2)
        a = solve_taa(small_sub_b4_instance, caps)
        b = solve_taa(small_sub_b4_instance, caps)
        assert a.schedule.assignment == b.schedule.assignment

    def test_bad_fallback_mu(self, small_sub_b4_instance):
        with pytest.raises(ValueError):
            solve_taa(
                small_sub_b4_instance,
                uniform_caps(small_sub_b4_instance, 2),
                fallback_mu=1.5,
            )

    def test_empty_instance(self, small_sub_b4_instance):
        empty = small_sub_b4_instance.restrict([])
        result = solve_taa(empty, uniform_caps(empty, 2))
        assert result.revenue == 0.0
        assert result.schedule.num_accepted == 0


class TestCapacityTypeValidation:
    def test_bool_capacity_rejected(self, small_sub_b4_instance):
        # bool is an int subclass, but True is not a valid "1 unit".
        caps = uniform_caps(small_sub_b4_instance, 5)
        caps[next(iter(caps))] = True  # type: ignore[assignment]
        with pytest.raises(AlgorithmError, match="integer capacity"):
            solve_taa(small_sub_b4_instance, caps)

    def test_numpy_integer_capacity_accepted(self, small_sub_b4_instance):
        import numpy as np

        caps = {key: np.int64(2) for key in small_sub_b4_instance.edges}
        result = solve_taa(small_sub_b4_instance, caps)
        result.schedule.check_capacities(caps)  # no raise


class TestDegenerateCertification:
    """Early-return runs build no estimator: nan, and never certified."""

    def test_empty_instance_reports_nan_uncertified(
        self, small_sub_b4_instance
    ):
        empty = small_sub_b4_instance.restrict([])
        result = solve_taa(empty, uniform_caps(empty, 2))
        assert math.isnan(result.estimator_initial)
        assert math.isnan(result.estimator_final)
        assert not result.certified

    def test_all_zero_bids_reports_nan_uncertified(self, diamond):
        requests = RequestSet(
            [
                make_request(0, rate=0.3, value=0.0),
                make_request(1, rate=0.4, value=0.0),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        result = solve_taa(inst, uniform_caps(inst, 1))
        assert result.schedule.num_accepted == 0
        assert result.revenue == 0.0
        assert math.isnan(result.estimator_initial)
        assert not result.certified

    def test_regular_run_reports_finite_estimator(
        self, small_sub_b4_instance
    ):
        result = solve_taa(
            small_sub_b4_instance, uniform_caps(small_sub_b4_instance, 3)
        )
        assert not math.isnan(result.estimator_initial)
        assert result.certified == (result.estimator_initial < 0.0)
