"""Tests for the experiment CLI."""

import json

import pytest

from repro.experiments.cli import build_parser, build_serve_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.requests is None
        assert args.seed == 2019
        assert args.roundings == 1000

    def test_request_sweep(self):
        args = build_parser().parse_args(["fig5", "--requests", "10", "20"])
        assert args.requests == [10, 20]


class TestMain:
    def test_fig3_no_opt_smoke(self, capsys):
        code = main(
            ["fig3", "--requests", "12", "--theta", "2", "--no-opt", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "Metis" in out

    def test_fig4b_smoke(self, capsys):
        code = main(
            ["fig4b", "--requests", "10", "--roundings", "5", "--seed", "1"]
        )
        assert code == 0
        assert "ratio_mean" in capsys.readouterr().out

    def test_markdown_output(self, tmp_path, capsys):
        report = tmp_path / "out.md"
        code = main(
            [
                "fig3",
                "--requests",
                "10",
                "--theta",
                "2",
                "--no-opt",
                "--output",
                str(report),
            ]
        )
        assert code == 0
        assert report.exists()
        assert "## fig3" in report.read_text()


class TestServe:
    def test_serve_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.topology == "b4"
        assert args.duration == 12
        assert args.workers == 0
        assert args.cache_size == 1024

    def test_serve_smoke(self, capsys):
        code = main(
            [
                "serve",
                "--topology",
                "sub-b4",
                "--duration",
                "6",
                "--requests",
                "8",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve: sub-b4" in out
        assert "decisions/sec" in out
        assert "cache hit rate" in out

    def test_serve_telemetry_dump(self, tmp_path, capsys):
        out_path = tmp_path / "telemetry.json"
        code = main(
            [
                "serve",
                "--topology",
                "sub-b4",
                "--duration",
                "6",
                "--requests",
                "5",
                "--seed",
                "2",
                "--telemetry",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["cycles"] == 1
        assert "latency_p95_ms" in payload["summary"]

    def test_serve_trace_replay(self, tmp_path, capsys):
        from repro.net.topologies import sub_b4
        from repro.workload.generator import WorkloadConfig, generate_workload
        from repro.workload.traces import save_trace_jsonl

        workload = generate_workload(
            sub_b4(), WorkloadConfig(num_requests=6, num_slots=6), rng=4
        )
        trace = tmp_path / "trace.jsonl"
        save_trace_jsonl(workload, workload.num_slots, trace)
        code = main(
            [
                "serve",
                "--topology",
                "sub-b4",
                "--cycles",
                "2",
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cycle(s)" in out

    def test_serve_bad_topology_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--topology", "nope"])
