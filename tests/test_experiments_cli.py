"""Tests for the experiment CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.requests is None
        assert args.seed == 2019
        assert args.roundings == 1000

    def test_request_sweep(self):
        args = build_parser().parse_args(["fig5", "--requests", "10", "20"])
        assert args.requests == [10, 20]


class TestMain:
    def test_fig3_no_opt_smoke(self, capsys):
        code = main(
            ["fig3", "--requests", "12", "--theta", "2", "--no-opt", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "Metis" in out

    def test_fig4b_smoke(self, capsys):
        code = main(
            ["fig4b", "--requests", "10", "--roundings", "5", "--seed", "1"]
        )
        assert code == 0
        assert "ratio_mean" in capsys.readouterr().out

    def test_markdown_output(self, tmp_path, capsys):
        report = tmp_path / "out.md"
        code = main(
            [
                "fig3",
                "--requests",
                "10",
                "--theta",
                "2",
                "--no-opt",
                "--output",
                str(report),
            ]
        )
        assert code == 0
        assert report.exists()
        assert "## fig3" in report.read_text()
