"""Tests for repro.experiments.charts."""

import pytest

from repro.experiments.charts import line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes_use_extreme_blocks(self):
        text = sparkline([0, 10])
        assert text[0] == "▁"
        assert text[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_is_nondecreasing(self):
        blocks = "▁▂▃▄▅▆▇█"
        text = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        indices = [blocks.index(ch) for ch in text]
        assert indices == sorted(indices)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0, float("nan")])


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart(
            [1, 2, 3],
            {"metis": [1.0, 2.0, 3.0], "ecoflow": [1.0, 1.5, 1.8]},
            width=20,
            height=6,
        )
        assert "o=metis" in text
        assert "x=ecoflow" in text
        assert "o" in text and "x" in text

    def test_y_labels_are_extremes(self):
        text = line_chart([0, 1], {"s": [2.0, 8.0]}, width=10, height=4)
        assert "8" in text and "2" in text

    def test_title(self):
        text = line_chart([0, 1], {"s": [0.0, 1.0]}, title="Fig X")
        assert text.splitlines()[0] == "Fig X"

    def test_nan_points_skipped(self):
        text = line_chart([0, 1, 2], {"s": [1.0, float("nan"), 2.0]})
        assert "s" in text  # renders without error

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([], {"s": []})
        with pytest.raises(ValueError):
            line_chart([1], {})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([1], {"s": [float("nan")]})

    def test_flat_series_ok(self):
        text = line_chart([0, 1], {"s": [3.0, 3.0]})
        assert "s" in text
