"""Tests for repro.core.schedule."""

import numpy as np
import pytest

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import CapacityViolationError, ScheduleError
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestConstruction:
    def test_missing_request_rejected(self, diamond_instance):
        with pytest.raises(ScheduleError, match="missing"):
            Schedule(diamond_instance, {0: 0})

    def test_unknown_request_rejected(self, diamond_instance):
        with pytest.raises(ScheduleError, match="unknown"):
            Schedule(diamond_instance, {0: 0, 1: 0, 2: 0, 99: 0})

    def test_path_index_out_of_range(self, diamond_instance):
        with pytest.raises(ScheduleError, match="out of range"):
            Schedule(diamond_instance, {0: 9, 1: 0, 2: 0})

    def test_explicit_charged_must_cover_loads(self, diamond_instance):
        zero = {key: 0 for key in diamond_instance.edges}
        with pytest.raises(CapacityViolationError):
            Schedule(diamond_instance, {0: 0, 1: 0, 2: 0}, charged=zero)


class TestCharging:
    def test_charge_is_ceiling_of_peak(self, diamond, diamond_requests):
        inst = SPMInstance.build(diamond, diamond_requests, k_paths=1)
        # All three requests ride the cheap path A->B->D; at slot 1 requests
        # 0 (0.6) and 1 (0.6) and 2 (0.3) overlap: peak 1.5 -> 2 units.
        schedule = Schedule(inst, {0: 0, 1: 0, 2: 0})
        ab = inst.edge_index[("A", "B")]
        assert schedule.loads[ab, 1] == pytest.approx(1.5)
        assert schedule.charged[("A", "B")] == 2

    def test_near_integer_load_not_overcharged(self, diamond):
        # Ten requests of rate 0.1 stack to 1.0000000...; must charge 1, not 2.
        requests = RequestSet(
            [make_request(i, rate=0.1, value=1.0) for i in range(10)],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=1)
        schedule = Schedule(inst, {i: 0 for i in range(10)})
        assert schedule.charged[("A", "B")] == 1

    def test_unused_edges_charged_zero(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        assert schedule.charged[("A", "C")] == 0


class TestAccounting:
    def test_revenue_cost_profit(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: 0})
        assert schedule.revenue == pytest.approx(3.0 + 1.0)
        # Requests 0 (rate .6) and 2 (rate .3) overlap at slots 0-1: peak 0.9
        # -> 1 unit on each of A->B (price 1) and B->D (price 1).
        assert schedule.cost == pytest.approx(2.0)
        assert schedule.profit == pytest.approx(2.0)
        assert schedule.num_accepted == 2
        assert schedule.declined_ids == [1]

    def test_empty_schedule(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: None, 1: None, 2: None})
        assert schedule.revenue == 0.0
        assert schedule.cost == 0.0
        assert schedule.profit == 0.0


class TestCapacitiesAndUtilization:
    def test_check_capacities_passes_within(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        caps = {key: 5 for key in diamond_instance.edges}
        schedule.check_capacities(caps)  # no raise

    def test_check_capacities_detects_violation(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        caps = {key: 0 for key in diamond_instance.edges}
        with pytest.raises(CapacityViolationError):
            schedule.check_capacities(caps)

    def test_none_capacity_is_unlimited(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        schedule.check_capacities({key: None for key in diamond_instance.edges})

    def test_utilization_only_charged_edges(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: None})
        stats = schedule.utilization()
        assert set(stats.per_edge) == {("A", "B"), ("B", "D")}
        # rate 0.6 for 2 of 4 slots over 1 unit -> mean load 0.3.
        assert stats.mean == pytest.approx(0.3)
        assert stats.max == pytest.approx(0.3)

    def test_utilization_empty(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: None, 1: None, 2: None})
        stats = schedule.utilization()
        assert stats.mean == 0.0 and stats.max == 0.0 and stats.min == 0.0
