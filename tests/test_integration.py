"""End-to-end integration tests: cross-solver invariants on one instance.

These tests run every solver in the library on the same seeded instances
and assert the dominance/feasibility web that must hold regardless of
workload: LP bounds, exact-vs-approximate orderings, validator agreement.
"""

import pytest

from repro.baselines.amoeba import solve_amoeba
from repro.baselines.ecoflow import solve_ecoflow
from repro.baselines.mincost import solve_mincost
from repro.baselines.opt import solve_opt_rl_spm, solve_opt_spm
from repro.core.formulations import build_bl_spm, build_rl_spm
from repro.core.instance import SPMInstance
from repro.core.maa import solve_maa
from repro.core.metis import Metis
from repro.core.taa import solve_taa
from repro.lp.branch_and_bound import branch_and_bound
from repro.net.topologies import sub_b4
from repro.sim.validator import validate_schedule
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.value_models import FlatRateValueModel


@pytest.fixture(scope="module", params=[3, 17])
def instance(request):
    topo = sub_b4()
    workload = generate_workload(
        topo,
        WorkloadConfig(
            num_requests=20,
            max_duration=4,
            value_model=FlatRateValueModel(0.8),
        ),
        rng=request.param,
    )
    return SPMInstance.build(topo, workload, k_paths=3)


class TestCostChain:
    """RL-SPM: LP <= OPT ILP <= MAA rounding, and MinCost above LP."""

    def test_lp_below_ilp_below_rounding(self, instance):
        lp = build_rl_spm(instance, integral=False).model.solve()
        ilp = solve_opt_rl_spm(instance)
        maa = solve_maa(instance, rng=0)
        assert lp.objective <= ilp.objective + 1e-6
        assert ilp.objective <= maa.cost + 1e-6

    def test_mincost_at_least_opt(self, instance):
        ilp = solve_opt_rl_spm(instance)
        mincost = solve_mincost(instance)
        assert mincost.cost >= ilp.objective - 1e-6


class TestProfitChain:
    """SPM: OPT dominates every heuristic; all profits validated."""

    def test_opt_dominates(self, instance):
        opt = solve_opt_spm(instance)
        metis = Metis(theta=6, maa_rounds=2).solve(instance, rng=0)
        ecoflow = solve_ecoflow(instance)
        rl = solve_opt_rl_spm(instance)
        assert opt.profit >= metis.best.profit - 1e-6
        assert opt.profit >= ecoflow.profit - 1e-6
        assert opt.profit >= rl.schedule.profit - 1e-6

    def test_every_schedule_validates(self, instance):
        schedules = {
            "opt": solve_opt_spm(instance).schedule,
            "rl": solve_opt_rl_spm(instance).schedule,
            "maa": solve_maa(instance, rng=1).schedule,
            "mincost": solve_mincost(instance),
            "ecoflow": solve_ecoflow(instance).schedule,
        }
        metis = Metis(theta=4).solve(instance, rng=1)
        if metis.best.schedule is not None:
            schedules["metis"] = metis.best.schedule
        for name, schedule in schedules.items():
            report = validate_schedule(schedule)
            assert report.ok, f"{name}: {report.errors}"


class TestRevenueChain:
    """BL-SPM under uniform capacity: LP >= ILP >= TAA, Amoeba feasible."""

    @pytest.fixture(scope="class")
    def caps(self):
        return 2

    def test_chain(self, instance, caps):
        capacities = {key: caps for key in instance.edges}
        lp = build_bl_spm(instance, capacities, integral=False).model.solve()
        ilp = build_bl_spm(instance, capacities, integral=True).model.solve()
        taa = solve_taa(instance, capacities)
        amoeba = solve_amoeba(instance, capacities)
        assert lp.objective >= ilp.objective - 1e-6
        assert ilp.objective >= taa.revenue - 1e-6
        assert ilp.objective >= amoeba.revenue - 1e-6
        taa.schedule.check_capacities(capacities)
        amoeba.schedule.check_capacities(capacities)


class TestSolverCrossCheck:
    """HiGHS MILP and the from-scratch branch and bound agree on SPM."""

    def test_spm_objective_agreement(self, instance):
        from repro.core.formulations import build_spm

        small = instance.restrict(instance.requests.request_ids[:8])
        problem = build_spm(small, integral=True)
        highs = problem.model.solve()
        bnb = branch_and_bound(problem.model, max_nodes=200_000)
        assert highs.objective == pytest.approx(bnb.objective, abs=1e-6)
