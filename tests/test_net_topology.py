"""Tests for repro.net.topology."""

import pytest

from repro.exceptions import EdgeNotFoundError, TopologyError
from repro.net.topology import Topology


def make_square():
    topo = Topology("square")
    for node in "ABCD":
        topo.add_datacenter(node)
    topo.add_link("A", "B", 1.0)
    topo.add_link("B", "C", 2.0)
    topo.add_link("C", "D", 1.0)
    topo.add_link("D", "A", 2.0)
    return topo


class TestConstruction:
    def test_bidirectional_links_by_default(self):
        topo = make_square()
        assert topo.num_edges == 8
        assert topo.price("A", "B") == topo.price("B", "A") == 1.0

    def test_unidirectional_link(self):
        topo = Topology("uni")
        topo.add_datacenter("A")
        topo.add_datacenter("B")
        topo.add_link("A", "B", 1.0, bidirectional=False)
        assert topo.num_edges == 1
        with pytest.raises(EdgeNotFoundError):
            topo.price("B", "A")

    def test_negative_price_rejected(self):
        topo = Topology("bad")
        with pytest.raises(TopologyError):
            topo.add_link("A", "B", -1.0)

    def test_region_recording(self):
        topo = Topology("regions")
        topo.add_datacenter("A", "europe")
        topo.add_datacenter("B")
        assert topo.region("A") == "europe"
        assert topo.region("B") is None


class TestCapacities:
    def test_default_capacity_unlimited(self):
        topo = make_square()
        assert topo.capacity("A", "B") is None

    def test_set_capacity(self):
        topo = make_square()
        topo.set_capacity("A", "B", 5)
        assert topo.capacity("A", "B") == 5
        assert topo.capacity("B", "A") is None, "directions are independent"

    def test_uniform_capacity(self):
        topo = make_square()
        topo.set_uniform_capacity(10)
        assert all(c == 10 for c in topo.capacities().values())

    def test_bad_capacity_rejected(self):
        topo = make_square()
        with pytest.raises(TopologyError):
            topo.set_capacity("A", "B", -1)
        with pytest.raises(TopologyError):
            topo.add_link("A", "C", 1.0, capacity=1.5)  # type: ignore[arg-type]

    def test_capacity_on_link_creation(self):
        topo = Topology("cap")
        topo.add_link("A", "B", 1.0, capacity=3)
        assert topo.capacity("A", "B") == 3
        assert topo.capacity("B", "A") == 3


class TestPathsAndValidation:
    def test_candidate_paths_sorted_by_cost(self):
        topo = make_square()
        paths = topo.candidate_paths("A", "C", k=2)
        assert len(paths) == 2
        assert paths[0].cost <= paths[1].cost
        assert {paths[0].nodes, paths[1].nodes} == {
            ("A", "B", "C"),
            ("A", "D", "C"),
        }

    def test_validate_accepts_square(self):
        make_square().validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(TopologyError, match="no data centers"):
            Topology("empty").validate()

    def test_validate_rejects_disconnected(self):
        topo = Topology("disc")
        topo.add_link("A", "B", 1.0)
        topo.add_datacenter("Z")
        with pytest.raises(TopologyError, match="strongly connected"):
            topo.validate()

    def test_copy_independent(self):
        topo = make_square()
        clone = topo.copy()
        clone.set_capacity("A", "B", 1)
        assert topo.capacity("A", "B") is None
        assert clone.num_edges == topo.num_edges
