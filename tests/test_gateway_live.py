"""End-to-end gateway tests over real sockets.

Everything here runs a real :class:`GatewayServer` on a loopback port
with fast wall clocks (tens of milliseconds per slot) and a hand-rolled
NDJSON client, covering: decision streaming, malformed-line survival,
flood shedding with exact accounting, graceful drain, crash-during-live-
traffic recovery through the WAL, and the ``repro serve`` signal
contract in a real subprocess.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.gateway import GatewayConfig, GatewayServer
from repro.gateway.protocol import decode_message
from repro.state import FaultPlan, SimulatedCrash, config_fingerprint, recover

# Small sub-B4 cycles so every test finishes in well under a second of
# simulated serving; windows close every ~30-50ms of real time.
_FAST = dict(
    topology="sub-b4",
    slots_per_cycle=4,
    window=1,
    slot_seconds=0.03,
    num_cycles=None,
    time_limit=5.0,
)


def _bid_line(
    rid: int,
    *,
    source: str = "DC1",
    dest: str = "DC4",
    start: int = 0,
    end: int = 3,
    rate: float = 1.0,
    value: float = 50.0,
) -> bytes:
    record = {
        "request_id": rid,
        "source": source,
        "dest": dest,
        "start": start,
        "end": end,
        "rate": rate,
        "value": value,
    }
    return (json.dumps(record) + "\n").encode()


async def _read(reader: asyncio.StreamReader) -> dict:
    line = await asyncio.wait_for(reader.readline(), timeout=10.0)
    assert line, "server closed the stream mid-conversation"
    return decode_message(line)


async def _connect(server: GatewayServer):
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    hello = await _read(reader)
    assert hello["type"] == "hello"
    return reader, writer, hello


def _assert_reconciled(server: GatewayServer) -> None:
    server.counters.assert_reconciled(where="test epilogue")


class TestLiveDecisions:
    def test_streams_decisions_then_bye_on_eof(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(**_FAST))
            await server.start()
            reader, writer, hello = await _connect(server)
            assert hello["topology"] == "SUB-B4"
            assert hello["slots_per_cycle"] == 4
            writer.writelines([_bid_line(rid) for rid in range(5)])
            await writer.drain()
            decisions = [await _read(reader) for _ in range(5)]
            writer.write_eof()
            bye = await _read(reader)
            writer.close()
            await server.stop()
            return server, decisions, bye

        server, decisions, bye = asyncio.run(scenario())
        assert [d["type"] for d in decisions] == ["decision"] * 5
        assert sorted(d["request_id"] for d in decisions) == list(range(5))
        for d in decisions:
            assert d["decision"] in ("accept", "reject")
            assert d["latency_ms"] >= 0.0
            if d["decision"] == "accept":
                assert isinstance(d["path"], int)
        assert bye["type"] == "bye" and bye["reason"] == "eof"
        assert bye["submitted"] == 5 and bye["responded"] == 5
        assert server.counters.submitted == 5
        assert server.counters.accepted + server.counters.rejected == 5
        _assert_reconciled(server)

    def test_accepted_bids_land_in_the_cycle_ledger(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(**_FAST))
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.writelines([_bid_line(rid) for rid in range(4)])
            await writer.drain()
            decisions = [await _read(reader) for _ in range(4)]
            writer.close()
            await server.stop()
            return server, decisions

        server, decisions = asyncio.run(scenario())
        # The drain committed the open cycle; every decision that was
        # acknowledged on the wire is in the committed assignment.
        assert server.cycles, "drain must commit the open cycle"
        assignment = server.cycles[0].assignment
        for d in decisions:
            expected = d["path"] if d["decision"] == "accept" else None
            assert assignment[d["request_id"]] == expected
        assert server.arrivals.fed_cycles[0] == 0


class TestMalformedInput:
    def test_bad_lines_get_errors_and_the_connection_survives(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(**_FAST))
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.write(b"{this is not json\n")
            writer.write(b'{"request_id": 1}\n')  # missing fields
            writer.write(_bid_line(2, source="XX"))  # unknown node
            writer.write(_bid_line(3, end=99))  # outside the cycle
            writer.write(_bid_line(4))  # and a valid one
            await writer.drain()
            responses = [await _read(reader) for _ in range(5)]
            writer.write_eof()
            bye = await _read(reader)
            writer.close()
            await server.stop()
            return server, responses, bye

        server, responses, bye = asyncio.run(scenario())
        errors = [r for r in responses if r["type"] == "error"]
        decisions = [r for r in responses if r["type"] == "decision"]
        assert len(errors) == 4 and len(decisions) == 1
        assert [e["line"] for e in errors] == [1, 2, 3, 4]
        assert "unknown node 'XX'" in errors[2]["error"]
        assert decisions[0]["request_id"] == 4
        assert bye["submitted"] == 5 and bye["responded"] == 5
        assert server.counters.errored == 4
        _assert_reconciled(server)

    def test_duplicate_request_ids_are_rejected_per_line(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(**_FAST))
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.write(_bid_line(7))
            writer.write(_bid_line(7))
            await writer.drain()
            responses = [await _read(reader) for _ in range(2)]
            writer.close()
            await server.stop()
            return server, responses

        server, responses = asyncio.run(scenario())
        kinds = sorted(r["type"] for r in responses)
        assert kinds == ["decision", "error"]
        error = next(r for r in responses if r["type"] == "error")
        assert "duplicate request_id 7" in error["error"]
        assert server.counters.errored == 1
        _assert_reconciled(server)


class TestFloodShedding:
    def test_overflowing_the_admission_queue_sheds_with_answers(self):
        flood = 60

        async def scenario():
            config = GatewayConfig(
                **{**_FAST, "slot_seconds": 0.1}, queue_capacity=4
            )
            server = GatewayServer(config)
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.writelines([_bid_line(rid) for rid in range(flood)])
            await writer.drain()
            responses = [await _read(reader) for _ in range(flood)]
            writer.close()
            await server.stop()
            return server, responses

        server, responses = asyncio.run(scenario())
        verdicts = [r["decision"] for r in responses]
        assert len(verdicts) == flood
        counters = server.counters
        assert counters.submitted == flood
        # A 4-deep queue against a 60-bid burst must shed most of it...
        assert counters.shed >= flood - 3 * 4
        assert verdicts.count("shed") == counters.shed
        # ...and the ledger still partitions the flood exactly.
        assert (
            counters.accepted
            + counters.rejected
            + counters.shed
            + counters.errored
            == flood
        )
        _assert_reconciled(server)


class TestGracefulDrain:
    def test_stop_decides_pending_commits_and_says_goodbye(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(**{**_FAST, "slot_seconds": 5.0}))
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.writelines([_bid_line(rid) for rid in range(3)])
            await writer.drain()
            # No window deadline will pass for seconds — the drain itself
            # must decide the pending bids and close the cycle.
            await asyncio.sleep(0.05)
            server.request_stop()
            messages = [await _read(reader) for _ in range(4)]
            await server.wait_closed()
            writer.close()
            return server, messages

        server, messages = asyncio.run(scenario())
        decisions, bye = messages[:3], messages[3]
        assert {d["request_id"] for d in decisions} == {0, 1, 2}
        assert all(d["decision"] in ("accept", "reject") for d in decisions)
        assert bye["type"] == "bye" and bye["reason"] == "drain"
        assert len(server.cycles) == 1
        _assert_reconciled(server)

    def test_submissions_during_drain_are_shed(self):
        # Socket ordering against a drain is inherently racy (the bye may
        # beat the bid), so pin the deterministic seam: a line submitted
        # while the stop flag is up is shed with an immediate answer.
        from repro.gateway.server import _Connection

        async def scenario():
            server = GatewayServer(GatewayConfig(**{**_FAST, "slot_seconds": 5.0}))
            await server.start()
            conn = _Connection(99, 8)
            server.request_stop()
            conn.lineno = 1
            server._submit(conn, _bid_line(1))
            await server.wait_closed()
            return server, conn

        server, conn = asyncio.run(scenario())
        assert server.counters.shed == 1
        assert server.counters.submitted == 1
        assert conn.responded == 1  # the shed verdict was queued for delivery
        _assert_reconciled(server)


class TestCrashRecovery:
    def test_crash_under_live_traffic_recovers_what_was_acknowledged(
        self, tmp_path
    ):
        wal = tmp_path / "gateway.wal"
        fingerprint = config_fingerprint(
            GatewayConfig(**_FAST, wal_path=wal).broker_config()
        )

        async def crash_run():
            config = GatewayConfig(**_FAST, wal_path=wal, fsync="always")
            server = GatewayServer(config, faults=FaultPlan(crash_after_cycles=2))
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.writelines([_bid_line(rid) for rid in range(6)])
            await writer.drain()
            decisions = [await _read(reader) for _ in range(6)]
            with pytest.raises(SimulatedCrash):
                await server.wait_closed()
            writer.close()
            return decisions

        decisions = asyncio.run(crash_run())

        state = recover(wal, fingerprint=fingerprint)
        assert state.next_cycle == 2 and len(state.cycles) == 2
        # Every decision acknowledged on the wire in a committed cycle is
        # in the recovered ledger, verdict and path intact.
        assignment = state.cycles[0].assignment
        for d in decisions:
            expected = d["path"] if d["decision"] == "accept" else None
            assert assignment[d["request_id"]] == expected

        async def resumed_run():
            config = GatewayConfig(
                **_FAST, wal_path=wal, fsync="always", resume=True
            )
            server = GatewayServer(config)
            await server.start()
            reader, writer, _ = await _connect(server)
            writer.write(_bid_line(100))
            await writer.drain()
            decision = await _read(reader)
            writer.close()
            await server.stop()
            return server, decision

        server, decision = asyncio.run(resumed_run())
        # The committed prefix is replayed bit-identically...
        assert len(server.cycles) >= 3
        for resumed, reference in zip(server.cycles, state.cycles):
            assert resumed.cycle == reference.cycle
            assert resumed.assignment == reference.assignment
            assert resumed.purchased == reference.purchased
            assert resumed.profit == reference.profit
        # ...and live serving continued where the crash left off.
        assert decision["cycle"] >= 2
        assert server.cycles[2].cycle == 2
        _assert_reconciled(server)


class TestServeSignals:
    def test_sigint_drains_flushes_and_exits_zero(self, tmp_path):
        wal = tmp_path / "serve.wal"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--topology",
                "sub-b4",
                "--duration",
                "4",
                "--slot-seconds",
                "0.05",
                "--wal",
                str(wal),
            ],
            cwd=str(Path(__file__).resolve().parent.parent),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert "gateway listening on" in banner
            port = int(banner.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                stream = sock.makefile("rwb")
                hello = decode_message(stream.readline())
                assert hello["type"] == "hello"
                stream.write(_bid_line(1))
                stream.flush()
                decision = decode_message(stream.readline())
                assert decision["type"] == "decision"
                proc.send_signal(signal.SIGINT)
                bye = decode_message(stream.readline())
                assert bye["type"] == "bye" and bye["reason"] == "drain"
            returncode = proc.wait(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert returncode == 0
        assert wal.exists()
        fingerprint = config_fingerprint(
            GatewayConfig(
                topology="sub-b4",
                slots_per_cycle=4,
                slot_seconds=0.05,
                wal_path=wal,
            ).broker_config()
        )
        state = recover(wal, fingerprint=fingerprint)
        assert state.cycles, "the drain must have committed the open cycle"
        stdout = proc.stdout.read()
        assert "drained" in stdout or "cycle" in stdout
