"""Tests for repro.workload.traces."""

import json

import pytest

from repro.exceptions import WorkloadError
from repro.net.topologies import sub_b4
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.traces import (
    load_trace,
    requests_from_dicts,
    requests_to_dicts,
    save_trace,
)


@pytest.fixture
def workload():
    return generate_workload(sub_b4(), WorkloadConfig(num_requests=15), rng=3)


class TestDictRoundTrip:
    def test_fields_preserved(self, workload):
        restored = requests_from_dicts(requests_to_dicts(workload))
        assert restored.num_slots == workload.num_slots
        assert len(restored) == len(workload)
        for a, b in zip(workload, restored):
            assert a.request_id == b.request_id
            assert str(a.source) == b.source and str(a.dest) == b.dest
            assert (a.start, a.end) == (b.start, b.end)
            assert a.rate == pytest.approx(b.rate)
            assert a.value == pytest.approx(b.value)

    def test_bad_version(self, workload):
        payload = requests_to_dicts(workload)
        payload["format_version"] = -1
        with pytest.raises(WorkloadError, match="format version"):
            requests_from_dicts(payload)


class TestFileRoundTrip:
    def test_save_load(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        restored = load_trace(path)
        assert len(restored) == len(workload)
        assert restored.total_value == pytest.approx(workload.total_value)

    def test_file_is_valid_json(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        payload = json.loads(path.read_text())
        assert payload["num_slots"] == 12
        assert len(payload["requests"]) == 15
