"""Tests for repro.workload.traces."""

import json

import pytest

from repro.exceptions import WorkloadError
from repro.net.topologies import sub_b4
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.traces import (
    arrival_stream,
    iter_trace_jsonl,
    load_trace,
    load_trace_jsonl,
    requests_from_dicts,
    requests_to_dicts,
    save_trace,
    save_trace_jsonl,
    trace_jsonl_header,
)


@pytest.fixture
def workload():
    return generate_workload(sub_b4(), WorkloadConfig(num_requests=15), rng=3)


class TestDictRoundTrip:
    def test_fields_preserved(self, workload):
        restored = requests_from_dicts(requests_to_dicts(workload))
        assert restored.num_slots == workload.num_slots
        assert len(restored) == len(workload)
        for a, b in zip(workload, restored):
            assert a.request_id == b.request_id
            assert str(a.source) == b.source and str(a.dest) == b.dest
            assert (a.start, a.end) == (b.start, b.end)
            assert a.rate == pytest.approx(b.rate)
            assert a.value == pytest.approx(b.value)

    def test_bad_version(self, workload):
        payload = requests_to_dicts(workload)
        payload["format_version"] = -1
        with pytest.raises(WorkloadError, match="format version"):
            requests_from_dicts(payload)


class TestFileRoundTrip:
    def test_save_load(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        restored = load_trace(path)
        assert len(restored) == len(workload)
        assert restored.total_value == pytest.approx(workload.total_value)

    def test_file_is_valid_json(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(workload, path)
        payload = json.loads(path.read_text())
        assert payload["num_slots"] == 12
        assert len(payload["requests"]) == 15


class TestJsonlStreaming:
    def test_roundtrip(self, workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(workload, workload.num_slots, path)
        restored = load_trace_jsonl(path)
        assert restored.num_slots == workload.num_slots
        assert [r.request_id for r in restored] == [r.request_id for r in workload]
        assert restored.total_value == pytest.approx(workload.total_value)

    def test_iter_is_lazy(self, workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(workload, workload.num_slots, path)
        iterator = iter_trace_jsonl(path)
        first = next(iterator)
        assert first.request_id == workload.requests[0].request_id
        assert len(list(iterator)) == len(workload) - 1

    def test_accepts_generator_input(self, workload, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl((r for r in workload), workload.num_slots, path)
        header = trace_jsonl_header(path)
        assert header["num_slots"] == workload.num_slots

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(WorkloadError, match="header"):
            list(iter_trace_jsonl(path))

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format_version": 99, "num_slots": 4}\n')
        with pytest.raises(WorkloadError, match="format version"):
            list(iter_trace_jsonl(path))

    def test_missing_num_slots_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format_version": 1}\n')
        with pytest.raises(WorkloadError, match="num_slots"):
            trace_jsonl_header(path)


class TestMalformedJsonlLines:
    """Malformed request lines must fail loudly, with the line number."""

    HEADER = '{"format_version": 1, "num_slots": 6}\n'
    GOOD = (
        '{"request_id": 0, "source": "a", "dest": "b", '
        '"start": 0, "end": 2, "rate": 1.0, "value": 2.0}\n'
    )

    def test_truncated_line_reports_line_number(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(self.HEADER + self.GOOD + self.GOOD[: len(self.GOOD) // 2])
        with pytest.raises(WorkloadError, match="line 3.*malformed"):
            load_trace_jsonl(path)

    def test_garbage_line_reports_line_number(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(self.HEADER + self.GOOD + "%%% not json %%%\n" + self.GOOD)
        with pytest.raises(WorkloadError, match="line 3"):
            list(iter_trace_jsonl(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "array.jsonl"
        path.write_text(self.HEADER + "[1, 2, 3]\n")
        with pytest.raises(WorkloadError, match="line 2.*JSON"):
            load_trace_jsonl(path)

    def test_missing_field_reports_line_number(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text(
            self.HEADER + '{"request_id": 0, "source": "a", "dest": "b"}\n'
        )
        with pytest.raises(WorkloadError, match="line 2.*invalid trace record"):
            load_trace_jsonl(path)

    def test_invalid_request_values_report_line_number(self, tmp_path):
        bad = self.GOOD.replace('"rate": 1.0', '"rate": -3.0')
        path = tmp_path / "negative.jsonl"
        path.write_text(self.HEADER + self.GOOD + bad.replace('"request_id": 0', '"request_id": 1'))
        with pytest.raises(WorkloadError, match="line 3.*rate"):
            load_trace_jsonl(path)

    def test_trace_source_propagates_line_number(self, tmp_path):
        from repro.service.ingest import TraceSource

        path = tmp_path / "torn.jsonl"
        path.write_text(self.HEADER + self.GOOD[: len(self.GOOD) // 2])
        with pytest.raises(WorkloadError, match="line 2"):
            TraceSource(path)


class TestArrivalStream:
    def test_groups_by_start_slot(self, workload):
        batches = list(arrival_stream(workload))
        slots = [slot for slot, _ in batches]
        assert slots == sorted(set(r.start for r in workload))
        regrouped = [r.request_id for _, batch in batches for r in batch]
        assert regrouped == [r.request_id for r in workload]

    def test_empty_stream(self):
        assert list(arrival_stream([])) == []

    def test_out_of_order_rejected(self):
        from tests.conftest import make_request

        requests = [
            make_request(0, start=2, end=3),
            make_request(1, start=1, end=3),
        ]
        with pytest.raises(WorkloadError, match="arrived? at slot|arrives at slot"):
            list(arrival_stream(requests))
