"""Tests for the from-scratch branch-and-bound MILP solver.

The solver exists to cross-check HiGHS: the hypothesis suite generates
random knapsack-style MILPs and asserts both solvers agree on the optimal
objective.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.lp.branch_and_bound import branch_and_bound
from repro.lp.model import Model
from repro.lp.result import SolveStatus


def knapsack_model(values, weights, capacity):
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(values))]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= capacity)
    m.set_objective(sum(v * x for v, x in zip(values, xs)), maximize=True)
    return m, xs


class TestBranchAndBound:
    def test_knapsack_optimal(self):
        m, xs = knapsack_model([10, 7, 4, 3], [5, 4, 3, 2], 7)
        sol = branch_and_bound(m)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(13.0)
        assert all(float(sol[x]).is_integer() for x in xs)

    def test_pure_lp_passthrough(self):
        m = Model()
        x = m.add_var("x", 0, 3)
        m.set_objective(x + 0, maximize=True)
        assert branch_and_bound(m).objective == pytest.approx(3.0)

    def test_minimization(self):
        # min x + y  s.t. 2x + y >= 3, integers  ->  x=1, y=1 or x=0, y=3
        m = Model()
        x = m.add_var("x", 0, 5, is_integer=True)
        y = m.add_var("y", 0, 5, is_integer=True)
        m.add_constr(2 * x + y >= 3)
        m.set_objective(x + y, maximize=False)
        sol = branch_and_bound(m)
        assert sol.objective == pytest.approx(2.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", 0, 1, is_integer=True)
        m.add_constr(2 * x == 1)
        m.set_objective(x + 0, maximize=True)
        assert branch_and_bound(m).status is SolveStatus.INFEASIBLE

    def test_node_limit_enforced(self):
        values = list(range(1, 12))
        weights = values
        m, _ = knapsack_model(values, weights, sum(values) // 2)
        with pytest.raises(SolverError, match="exceeded"):
            branch_and_bound(m, max_nodes=1)

    def test_mixed_integer_continuous(self):
        m = Model()
        i = m.add_var("i", 0, 5, is_integer=True)
        c = m.add_var("c", 0, 1)
        m.add_constr(i + c <= 2.5)
        m.set_objective(2 * i + c, maximize=True)
        sol = branch_and_bound(m)
        assert sol.objective == pytest.approx(4.5)
        assert sol[i] == 2


class TestAgainstHiGHS:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=30),  # value
                st.integers(min_value=1, max_value=15),  # weight
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_knapsack_objectives_agree(self, items, capacity):
        values = [v for v, _ in items]
        weights = [w for _, w in items]
        m, _ = knapsack_model(values, weights, capacity)
        ours = branch_and_bound(m)
        highs = m.solve()
        assert ours.is_optimal and highs.is_optimal
        assert ours.objective == pytest.approx(highs.objective)

    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=6),
        st.integers(min_value=2, max_value=25),
    )
    @settings(max_examples=20, deadline=None)
    def test_covering_objectives_agree(self, costs, demand):
        # min sum c_i x_i  s.t. sum x_i >= demand, x_i integer in [0, 5]
        m = Model()
        xs = [m.add_var(f"x{i}", 0, 5, is_integer=True) for i in range(len(costs))]
        m.add_constr(sum(xs) >= min(demand, 5 * len(costs)))
        m.set_objective(sum(c * x for c, x in zip(costs, xs)), maximize=False)
        ours = branch_and_bound(m)
        highs = m.solve()
        assert ours.objective == pytest.approx(highs.objective)
