"""Tests for repro.core.instance."""

import numpy as np
import pytest

from repro.core.instance import SPMInstance
from repro.exceptions import ScheduleError
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestBuild:
    def test_paths_enumerated_per_request(self, diamond, diamond_requests):
        inst = SPMInstance.build(diamond, diamond_requests, k_paths=2)
        for req in diamond_requests:
            paths = inst.paths[req.request_id]
            assert 1 <= len(paths) <= 2
            assert paths[0].cost <= paths[-1].cost
            assert paths[0].source == req.source
            assert paths[0].target == req.dest

    def test_dimensions(self, diamond_instance):
        assert diamond_instance.num_requests == 3
        assert diamond_instance.num_edges == 8
        assert diamond_instance.num_slots == 4

    def test_prices_aligned_with_edges(self, diamond_instance):
        topo = diamond_instance.topology
        for idx, key in enumerate(diamond_instance.edges):
            assert diamond_instance.prices[idx] == topo.price(*key)

    def test_path_edges_match_incidence(self, diamond_instance):
        inst = diamond_instance
        for req in inst.requests:
            for j, path in enumerate(inst.paths[req.request_id]):
                for edge_key in path.edges:
                    edge_idx = inst.edge_index[edge_key]
                    assert inst.uses_edge(req.request_id, j, edge_idx)

    def test_missing_paths_rejected(self, diamond, diamond_requests):
        with pytest.raises(ScheduleError, match="no candidate paths"):
            SPMInstance(diamond, diamond_requests, paths={})


class TestRestrict:
    def test_restrict_keeps_subset(self, diamond_instance):
        sub = diamond_instance.restrict([0, 2])
        assert sub.num_requests == 2
        assert sub.requests.request_ids == [0, 2]
        assert sub.topology is diamond_instance.topology

    def test_restrict_preserves_edge_order(self, diamond_instance):
        sub = diamond_instance.restrict([1])
        assert sub.edges == diamond_instance.edges


class TestLoads:
    def test_loads_shape_and_content(self, diamond_instance):
        inst = diamond_instance
        assignment = {0: 0, 1: None, 2: 0}
        loads = inst.loads(assignment)
        assert loads.shape == (inst.num_edges, inst.num_slots)
        req0 = inst.request(0)
        first_edge = inst.path_edges[0][0][0]
        assert loads[first_edge, req0.start] >= req0.rate

    def test_declined_requests_add_nothing(self, diamond_instance):
        loads = diamond_instance.loads({0: None, 1: None, 2: None})
        assert np.all(loads == 0)

    def test_loads_additive_across_requests(self, diamond_instance):
        inst = diamond_instance
        both = inst.loads({0: 0, 1: 0, 2: None})
        only0 = inst.loads({0: 0, 1: None, 2: None})
        only1 = inst.loads({0: None, 1: 0, 2: None})
        assert np.allclose(both, only0 + only1)

    def test_bad_path_lookup(self, diamond_instance):
        with pytest.raises(ScheduleError):
            diamond_instance.path(0, 99)
        with pytest.raises(ScheduleError):
            diamond_instance.path(42, 0)


class TestPathCache:
    def test_shared_pairs_share_paths(self, diamond):
        requests = RequestSet(
            [
                make_request(0, start=0, end=0),
                make_request(1, start=1, end=1),
            ],
            num_slots=2,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        assert inst.paths[0] is inst.paths[1], "same (src, dst) shares the list"
