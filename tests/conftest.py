"""Shared fixtures: small topologies, workloads and SPM instances."""

from __future__ import annotations

import pytest

from repro.core.instance import SPMInstance
from repro.net.topologies import b4, sub_b4
from repro.net.topology import Topology
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.request import Request, RequestSet
from repro.workload.value_models import FlatRateValueModel


@pytest.fixture
def diamond() -> Topology:
    """Four DCs with two disjoint A->D routes of different price.

    A -> B -> D costs 2 (cheap), A -> C -> D costs 4 (expensive); all links
    bidirectional.
    """
    topo = Topology("diamond")
    for node in ("A", "B", "C", "D"):
        topo.add_datacenter(node)
    topo.add_link("A", "B", 1.0)
    topo.add_link("B", "D", 1.0)
    topo.add_link("A", "C", 2.0)
    topo.add_link("C", "D", 2.0)
    topo.validate()
    return topo


@pytest.fixture
def b4_topology() -> Topology:
    return b4()


@pytest.fixture
def sub_b4_topology() -> Topology:
    return sub_b4()


def make_request(
    request_id: int = 0,
    source: str = "A",
    dest: str = "D",
    start: int = 0,
    end: int = 0,
    rate: float = 0.5,
    value: float = 1.0,
) -> Request:
    """A request with test-friendly defaults on the diamond topology."""
    return Request(
        request_id=request_id,
        source=source,
        dest=dest,
        start=start,
        end=end,
        rate=rate,
        value=value,
    )


@pytest.fixture
def diamond_requests() -> RequestSet:
    """Three overlapping A->D requests within a 4-slot cycle."""
    return RequestSet(
        [
            make_request(0, start=0, end=1, rate=0.6, value=3.0),
            make_request(1, start=1, end=2, rate=0.6, value=2.0),
            make_request(2, start=0, end=3, rate=0.3, value=1.0),
        ],
        num_slots=4,
    )


@pytest.fixture
def diamond_instance(diamond, diamond_requests) -> SPMInstance:
    return SPMInstance.build(diamond, diamond_requests, k_paths=2)


@pytest.fixture
def small_sub_b4_instance(sub_b4_topology) -> SPMInstance:
    """A seeded 25-request instance on SUB-B4 (fast but non-trivial)."""
    workload = generate_workload(
        sub_b4_topology,
        WorkloadConfig(
            num_requests=25,
            num_slots=12,
            max_duration=4,
            value_model=FlatRateValueModel(1.0),
        ),
        rng=7,
    )
    return SPMInstance.build(sub_b4_topology, workload, k_paths=3)
