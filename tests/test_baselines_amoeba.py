"""Tests for the Amoeba baseline."""

import pytest

from repro.baselines.amoeba import solve_amoeba
from repro.core.instance import SPMInstance
from repro.exceptions import AlgorithmError
from repro.workload.request import RequestSet

from tests.conftest import make_request


def uniform_caps(instance, units):
    return {key: units for key in instance.edges}


class TestSolveAmoeba:
    def test_ample_capacity_accepts_all(self, small_sub_b4_instance):
        result = solve_amoeba(
            small_sub_b4_instance, uniform_caps(small_sub_b4_instance, 100)
        )
        assert (
            result.schedule.num_accepted == small_sub_b4_instance.num_requests
        )

    def test_zero_capacity_accepts_none(self, small_sub_b4_instance):
        result = solve_amoeba(
            small_sub_b4_instance, uniform_caps(small_sub_b4_instance, 0)
        )
        assert result.schedule.num_accepted == 0

    def test_respects_capacities(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 1)
        result = solve_amoeba(small_sub_b4_instance, caps)
        result.schedule.check_capacities(caps)  # no raise

    def test_first_fit_in_arrival_order(self, diamond):
        # Capacity 1 on every link; two rate-0.6 requests overlap: the
        # first gets the cheap path, the second spills to the expensive
        # one, a third overlapping request does not fit at all.
        requests = RequestSet(
            [
                make_request(0, start=0, end=0, rate=0.6, value=1.0),
                make_request(1, start=0, end=0, rate=0.6, value=9.0),
                make_request(2, start=0, end=0, rate=0.6, value=9.0),
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        result = solve_amoeba(inst, uniform_caps(inst, 1))
        assert result.schedule.assignment[0] == 0
        assert result.schedule.assignment[1] == 1
        assert result.schedule.assignment[2] is None, (
            "value-blind first-fit keeps the early cheap request and "
            "declines the late valuable one"
        )

    def test_disjoint_windows_share_capacity(self, diamond):
        requests = RequestSet(
            [
                make_request(0, start=0, end=0, rate=0.9),
                make_request(1, start=1, end=1, rate=0.9),
            ],
            num_slots=2,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=1)
        result = solve_amoeba(inst, uniform_caps(inst, 1))
        assert result.schedule.num_accepted == 2

    def test_missing_capacity_rejected(self, small_sub_b4_instance):
        caps = uniform_caps(small_sub_b4_instance, 1)
        caps.pop(next(iter(caps)))
        with pytest.raises(AlgorithmError):
            solve_amoeba(small_sub_b4_instance, caps)
